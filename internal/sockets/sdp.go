package sockets

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// SDP (Sockets Direct Protocol) over the RDMA verbs providers. Small sends
// use the buffered-copy (bcopy) path: the payload rides the Send/Recv
// channel through pre-registered private buffers. Large sends switch to
// zero-copy: the source advertises its pinned buffer (SrcAvail), the sink
// replies with its pinned receive buffer (SinkAvail), the source RDMA
// Writes straight into it and finishes with RdmaWrCompl. A kernel-context
// progress thread drives the protocol, so SDP — unlike the paper's
// call-driven MPI stacks — makes independent progress.
const (
	sdpBcopyMax = 16 << 10

	// Wire header: kind(1) pad(3) len(4) id(8) rkey(4).
	sdpHdr = 20

	sdpData      byte = 1
	sdpSrcAvail  byte = 2
	sdpSinkAvail byte = 3
	sdpWrCompl   byte = 4
)

// SDPConfig sizes the SDP channel.
type SDPConfig struct {
	// Credits is the private-buffer ring depth per side.
	Credits int
	// SyscallCost is charged per send()/recv() call.
	SyscallCost sim.Time
}

// DefaultSDPConfig returns the standard channel sizing.
func DefaultSDPConfig() SDPConfig {
	return SDPConfig{Credits: 64, SyscallCost: sim.Micros(1.2)}
}

// rxItem is one stream-ordered unit at the receiver: either bcopy bytes or
// a zero-copy advertisement.
type rxItem struct {
	data []byte
	src  *srcAvail
}

type srcAvail struct {
	n  int
	id uint64
}

// recvReq is one blocked recv() call.
type recvReq struct {
	buf    *mem.Buffer
	off, n int
	done   *sim.Completion
	zcopy  bool        // satisfied by RDMA write (no copy-out needed)
	region *mem.Region // sink pin for a zcopy receive
}

type zcopySend struct {
	region *mem.Region
	done   *sim.Completion
}

type sdpBounce struct {
	buf *mem.Buffer
	reg *mem.Region
}

type sdpWR struct {
	bounce *sdpBounce
	write  *zcopySend
	id     uint64
}

// sdp is one side of an SDP socket.
type sdp struct {
	eng  *sim.Engine
	name string
	cfg  SDPConfig
	host *cluster.Host
	qp   verbs.QP
	regs *mem.RegCache

	sendFree []*sdpBounce
	items    []rxItem
	recvQ    []*recvReq
	zwait    *recvReq // recv whose zcopy write is in flight

	cq      *verbs.CQ
	wrs     map[uint64]*sdpWR
	nextWR  uint64
	nextID  uint64
	pending map[uint64]*zcopySend
}

// NewSDPPair builds two SDP endpoints over a fresh two-node testbed of the
// given verbs stack (cluster.IWARP or cluster.IB). The testbed's engine
// drives both endpoints.
func NewSDPPair(kind cluster.Kind, cfg SDPConfig) (*cluster.Testbed, Endpoint, Endpoint) {
	tb := cluster.New(kind, 2)
	qa, qb := tb.ConnectQP(0, 1)
	a := newSDP(tb, 0, qa, cfg)
	b := newSDP(tb, 1, qb, cfg)
	if err := tb.Run(); err != nil { // drain setup (pre-posted buffers)
		panic(fmt.Sprintf("sockets: sdp setup: %v", err))
	}
	return tb, a, b
}

// cqSetter is implemented by both verbs providers' QPs.
type cqSetter interface {
	SetCQs(scq, rcq *verbs.CQ)
}

func newSDP(tb *cluster.Testbed, hostIdx int, qp verbs.QP, cfg SDPConfig) *sdp {
	h := tb.Hosts[hostIdx]
	s := &sdp{
		eng:     tb.Eng,
		name:    fmt.Sprintf("sdp%d", hostIdx),
		cfg:     cfg,
		host:    h,
		qp:      qp,
		wrs:     make(map[uint64]*sdpWR),
		pending: make(map[uint64]*zcopySend),
	}
	// One merged CQ so the progress thread can block on a single queue.
	s.cq = verbs.NewCQ(tb.Eng, s.name+"/cq", h.PollDetect())
	qp.(cqSetter).SetCQs(s.cq, s.cq)
	s.regs = mem.NewRegCache(h.NIC().Reg(), 64)
	tb.Eng.Go(s.name+"/init", func(p *sim.Proc) {
		size := sdpHdr + sdpBcopyMax
		for i := 0; i < cfg.Credits; i++ {
			buf := h.Mem.Alloc(size)
			s.sendFree = append(s.sendFree, &sdpBounce{buf: buf, reg: h.NIC().Reg().RegisterFree(buf, 0, size)})
		}
		for i := 0; i < cfg.Credits; i++ {
			buf := h.Mem.Alloc(size)
			bb := &sdpBounce{buf: buf, reg: h.NIC().Reg().RegisterFree(buf, 0, size)}
			s.postRecv(p, bb)
		}
	})
	tb.Eng.Go(s.name+"/progress", s.progress)
	return s
}

// Mem implements Endpoint.
func (s *sdp) Mem() *mem.Memory { return s.host.Mem }

// Name implements Endpoint.
func (s *sdp) Name() string { return "SDP" }

func (s *sdp) newWR(w *sdpWR) uint64 {
	s.nextWR++
	s.wrs[s.nextWR] = w
	return s.nextWR
}

func (s *sdp) postRecv(p *sim.Proc, bb *sdpBounce) {
	s.qp.PostRecv(p, verbs.WR{ID: s.newWR(&sdpWR{bounce: bb}), Op: verbs.OpRecv, Local: bb.reg})
}

// getBounce pops a free private buffer; the progress loop recycles them.
func (s *sdp) getBounce(p *sim.Proc) *sdpBounce {
	for len(s.sendFree) == 0 {
		p.Sleep(sim.Microsecond) // ring full: wait for credits to return
	}
	bb := s.sendFree[len(s.sendFree)-1]
	s.sendFree = s.sendFree[:len(s.sendFree)-1]
	return bb
}

func (s *sdp) sendCtrl(p *sim.Proc, kind byte, n int, id uint64, rkey mem.RKey, payload []byte) {
	bb := s.getBounce(p)
	hdr := bb.buf.Bytes()
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
	binary.LittleEndian.PutUint64(hdr[8:], id)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(rkey))
	ln := sdpHdr
	if payload != nil {
		copy(bb.buf.Bytes()[sdpHdr:], payload)
		ln += len(payload)
	}
	s.qp.PostSend(p, verbs.WR{ID: s.newWR(&sdpWR{bounce: bb}), Op: verbs.OpSend, Local: bb.reg, Len: ln})
}

// Send implements Endpoint.
func (s *sdp) Send(pr *sim.Proc, buf *mem.Buffer, off, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("sockets %s: send %d", s.name, n))
	}
	pr.Sleep(s.cfg.SyscallCost)
	if n <= sdpBcopyMax {
		// bcopy: one copy into the private buffer, then fire and forget.
		pr.Sleep(s.host.Mem.CopyRate.TxTime(n) + s.host.Mem.TouchCost(buf, off, n))
		s.sendCtrl(pr, sdpData, n, 0, 0, buf.Slice(off, n))
		return
	}
	// zcopy: pin, advertise, wait for the RDMA write round to complete.
	region := s.regs.Get(pr, buf, off, n)
	s.nextID++
	id := s.nextID
	z := &zcopySend{region: region, done: sim.NewCompletion(s.eng)}
	s.pending[id] = z
	s.sendCtrl(pr, sdpSrcAvail, n, id, 0, nil)
	z.done.Wait(pr)
	s.regs.Put(pr, region)
}

// Recv implements Endpoint: enqueue the request, let matching (driven from
// both this call and the progress loop) satisfy it in stream order, then
// pay the copy-out for bcopy data.
func (s *sdp) Recv(pr *sim.Proc, buf *mem.Buffer, off, n int) {
	pr.Sleep(s.cfg.SyscallCost)
	req := &recvReq{buf: buf, off: off, n: n, done: sim.NewCompletion(s.eng)}
	s.recvQ = append(s.recvQ, req)
	s.match(pr)
	req.done.Wait(pr)
	if !req.zcopy {
		pr.Sleep(s.host.Mem.CopyRate.TxTime(n) + s.host.Mem.TouchCost(buf, off, n))
		s.copyOut(req)
	}
}

// buffered returns how many bcopy bytes head the item list before any
// zcopy advertisement.
func (s *sdp) buffered() int {
	total := 0
	for _, it := range s.items {
		if it.src != nil {
			break
		}
		total += len(it.data)
	}
	return total
}

// match pairs the head receive request with the head of the item stream.
// It runs in both application and progress context; completions make the
// wakeups safe from either.
func (s *sdp) match(p *sim.Proc) {
	for len(s.recvQ) > 0 {
		req := s.recvQ[0]
		if s.zwait == req {
			return // zcopy transfer in flight
		}
		if len(s.items) > 0 && s.items[0].src != nil {
			sa := s.items[0].src
			if sa.n != req.n {
				panic(fmt.Sprintf("sockets %s: zcopy item %dB vs recv %dB (boundary mismatch)", s.name, sa.n, req.n))
			}
			s.items = s.items[1:]
			req.zcopy = true
			s.zwait = req
			req.region = s.regs.Get(p, req.buf, req.off, req.n)
			s.sendCtrl(p, sdpSinkAvail, req.n, sa.id, req.region.Key, nil)
			return
		}
		if s.buffered() < req.n {
			return // not enough bcopy bytes yet
		}
		// Enough buffered data: release the request; the application pays
		// the copy-out in its own context (copyOut).
		s.recvQ = s.recvQ[1:]
		req.done.Fire()
		// Only one request can consume the head bytes until copyOut runs.
		return
	}
}

// copyOut moves req.n head bytes of the item stream into the user buffer.
func (s *sdp) copyOut(req *recvReq) {
	need := req.n
	dst := req.buf.Slice(req.off, req.n)
	for need > 0 {
		it := &s.items[0]
		take := min(len(it.data), need)
		copy(dst[req.n-need:], it.data[:take])
		it.data = it.data[take:]
		need -= take
		if len(it.data) == 0 {
			s.items = s.items[1:]
		}
	}
	// The stream head moved: another request may now be eligible, but
	// matching needs a proc context for registration; the progress loop
	// kicks it on its next completion. Fire-and-check is enough for the
	// benchmark's sequential recv() usage.
}

// progress is SDP's kernel-context protocol engine.
func (s *sdp) progress(p *sim.Proc) {
	for {
		comp := s.cq.Poll(p)
		if comp.Op == verbs.OpRecv {
			s.handleRecv(p, comp)
		} else {
			s.handleSend(p, comp)
		}
	}
}

func (s *sdp) handleSend(p *sim.Proc, comp verbs.Completion) {
	w := s.wrs[comp.WRID]
	delete(s.wrs, comp.WRID)
	if w.write != nil {
		// RDMA write done: notify the sink, release the sender.
		s.sendCtrl(p, sdpWrCompl, 0, w.id, 0, nil)
		w.write.done.Fire()
		return
	}
	if w.bounce != nil {
		s.sendFree = append(s.sendFree, w.bounce)
	}
}

func (s *sdp) handleRecv(p *sim.Proc, comp verbs.Completion) {
	w := s.wrs[comp.WRID]
	delete(s.wrs, comp.WRID)
	bb := w.bounce
	hdr := bb.buf.Bytes()
	kind := hdr[0]
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	id := binary.LittleEndian.Uint64(hdr[8:])
	rkey := mem.RKey(binary.LittleEndian.Uint32(hdr[16:]))
	switch kind {
	case sdpData:
		s.items = append(s.items, rxItem{data: append([]byte(nil), bb.buf.Slice(sdpHdr, n)...)})
		s.match(p)
	case sdpSrcAvail:
		s.items = append(s.items, rxItem{src: &srcAvail{n: n, id: id}})
		s.match(p)
	case sdpSinkAvail:
		z, ok := s.pending[id]
		if !ok {
			panic(fmt.Sprintf("sockets %s: SinkAvail for unknown id %d", s.name, id))
		}
		delete(s.pending, id)
		s.qp.PostSend(p, verbs.WR{
			ID:        s.newWR(&sdpWR{write: z, id: id}),
			Op:        verbs.OpWrite,
			Local:     z.region,
			Len:       z.region.Len,
			RemoteKey: rkey,
		})
	case sdpWrCompl:
		if s.zwait == nil {
			panic(fmt.Sprintf("sockets %s: WrCompl with no zcopy recv in flight", s.name))
		}
		req := s.zwait
		s.zwait = nil
		s.recvQ = s.recvQ[1:]
		s.regs.Put(p, req.region)
		req.done.Fire()
		s.match(p)
	default:
		panic(fmt.Sprintf("sockets %s: bad SDP kind %d", s.name, kind))
	}
	s.postRecv(p, bb)
}
