// Package sockets implements the stream-socket stacks the paper's Section 7
// names as future work ("we intend to extend our study to include uDAPL,
// sockets, and applications"), covering the three ways 2006-era systems ran
// the sockets API over these fabrics:
//
//   - HostTCP: conventional kernel TCP/IP on a plain 10GigE NIC. Every
//     packet costs host CPU (interrupt, protocol processing, checksum) and
//     every byte is copied twice per side — the "Ethernet" half of the
//     Ethernet-Ethernot gap the paper's introduction motivates.
//   - TOE: the same sockets API with TCP offloaded to the NIC (the NE010's
//     "IPv4 TOE and NIC acceleration"): per-packet work moves off the host,
//     one copy per side remains (user <-> socket buffer).
//   - SDP: Sockets Direct Protocol over the RDMA verbs providers (the
//     NetEffect RNIC "can be accessed using ... SDP"): small sends ride a
//     buffered (bcopy) channel, large sends switch to zero-copy rendezvous
//     RDMA writes.
//
// All three expose the same blocking byte-stream API (Send/Recv), so the
// comparison benchmark in internal/bench measures exactly the API the
// paper's follow-up study would have.
package sockets

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Endpoint is one side of a connected byte-stream socket.
type Endpoint interface {
	// Send writes [off, off+n) of buf to the stream, blocking until the
	// bytes are accepted (copied out of the user buffer or, for zero-copy
	// paths, transferred).
	Send(pr *sim.Proc, buf *mem.Buffer, off, n int)
	// Recv blocks until exactly n bytes are available and copies them into
	// [off, off+n) of buf.
	Recv(pr *sim.Proc, buf *mem.Buffer, off, n int)
	// Name identifies the stack for reporting.
	Name() string
	// Mem returns the endpoint's host memory, for allocating test buffers.
	Mem() *mem.Memory
}

// HostMem returns an endpoint's host memory.
func HostMem(e Endpoint) *mem.Memory { return e.Mem() }

// stream is the receive-side reassembly shared by the implementations: a
// byte queue with blocked readers.
type stream struct {
	eng     *sim.Engine
	buf     []byte
	waiters []*waiter
}

type waiter struct {
	need int
	c    *sim.Completion
}

func newStream(eng *sim.Engine) *stream { return &stream{eng: eng} }

// push appends bytes and wakes readers whose demand is now met.
func (s *stream) push(b []byte) {
	s.buf = append(s.buf, b...)
	for len(s.waiters) > 0 && len(s.buf) >= s.waiters[0].need {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.c.Fire()
	}
}

// await blocks p until n bytes are buffered.
func (s *stream) await(p *sim.Proc, n int) {
	if len(s.buf) >= n && len(s.waiters) == 0 {
		return
	}
	w := &waiter{need: n, c: sim.NewCompletion(s.eng)}
	s.waiters = append(s.waiters, w)
	w.c.Wait(p)
}

// take removes n buffered bytes.
func (s *stream) take(n int) []byte {
	if len(s.buf) < n {
		panic(fmt.Sprintf("sockets: take %d of %d buffered", n, len(s.buf)))
	}
	out := s.buf[:n]
	s.buf = s.buf[n:]
	return out
}

// Len returns the number of buffered bytes.
func (s *stream) Len() int { return len(s.buf) }
