package sockets

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/pci"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// TOEConfig models the sockets API running over an offloaded TCP engine
// (the NE010's IPv4 TOE without the iWARP layers): per-packet protocol work
// moves to the NIC, checksums are free, and one copy per side remains
// (user buffer <-> socket buffer, which the NIC DMAs directly).
type TOEConfig struct {
	MTU         int
	SyscallCost sim.Time
	// NICPerPkt is TOE engine occupancy per segment, each direction.
	NICPerPkt sim.Time
	// NICAckTime is engine time for a pure ACK.
	NICAckTime sim.Time
	// CompletionDelay covers the NIC-to-host completion notification
	// (doorbell/event) per arriving record.
	CompletionDelay sim.Time
	PCIe            pci.Config
	Bridge          pci.Config
}

// DefaultTOEConfig returns the NE010-as-a-TOE model: the same internal
// PCI-X bridge bounds bandwidth, but the host only pays syscalls and one
// copy.
func DefaultTOEConfig() TOEConfig {
	bridge := pci.PCIX133()
	bridge.HalfDuplex = false
	bridge.MaxPayload = 192
	return TOEConfig{
		MTU:             9000,
		SyscallCost:     sim.Micros(1.2),
		NICPerPkt:       sim.Micros(1.6),
		NICAckTime:      sim.Micros(0.15),
		CompletionDelay: sim.Micros(1.0),
		PCIe:            pci.PCIeX8(),
		Bridge:          bridge,
	}
}

// toe is one side of a TOE-socket connection.
type toe struct {
	eng    *sim.Engine
	name   string
	cfg    TOEConfig
	mem    *mem.Memory
	engine *sim.Resource // the TOE protocol engine
	pcie   *pci.Bus
	bridge *pci.Bus
	port   *fabric.Port
	peer   *toe
	conn   *tcpsim.Conn

	rxQ      *sim.Queue[tcpsim.Segment]
	rcv      *stream
	txKick   *sim.Queue[struct{}]
	chainEnd sim.Time
}

// NewTOEPair builds two TOE-socket endpoints on a fresh 10GigE fabric.
func NewTOEPair(eng *sim.Engine, cfg TOEConfig) (Endpoint, Endpoint) {
	net := fabric.New(eng, cluster.FabricConfig(cluster.IWARP))
	mk := func(name string) *toe {
		t := &toe{
			eng:    eng,
			name:   name,
			cfg:    cfg,
			mem:    mem.NewMemory(eng, name),
			engine: sim.NewResource(eng, name+"/toe-engine", 1),
			pcie:   pci.New(eng, cfg.PCIe),
			bridge: pci.New(eng, cfg.Bridge),
			rxQ:    sim.NewQueue[tcpsim.Segment](eng, name+"/rxq"),
			rcv:    newStream(eng),
			txKick: sim.NewQueue[struct{}](eng, name+"/txkick"),
		}
		t.conn = tcpsim.NewConn(eng, name)
		t.conn.MSS = cfg.MTU - 40
		t.conn.OnSendable = func() { t.txKick.Put(struct{}{}) }
		t.port = net.Attach(t)
		eng.Go(name+"/nic-tx", t.txLoop)
		eng.Go(name+"/nic-rx", t.rxLoop)
		return t
	}
	a := mk("toe0")
	b := mk("toe1")
	a.peer, b.peer = b, a
	return a, b
}

// Mem implements Endpoint.
func (t *toe) Mem() *mem.Memory { return t.mem }

// Name implements Endpoint.
func (t *toe) Name() string { return "TCP/TOE" }

// Deliver implements fabric.Endpoint.
func (t *toe) Deliver(f *fabric.Frame) { t.rxQ.Put(f.Payload.(tcpsim.Segment)) }

// Send implements Endpoint: one copy into the (DMA-able) socket buffer,
// then the NIC takes over.
func (t *toe) Send(pr *sim.Proc, buf *mem.Buffer, off, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("sockets %s: send %d", t.name, n))
	}
	pr.Sleep(t.cfg.SyscallCost)
	// Socket-buffer chunking overlaps the user-buffer copy with the NIC's
	// transmission of earlier chunks.
	const chunk = 64 << 10
	for o := off; o < off+n; o += chunk {
		c := min(chunk, off+n-o)
		pr.Sleep(t.mem.CopyRate.TxTime(c) + t.mem.TouchCost(buf, o, c))
		payload := append([]byte(nil), buf.Slice(o, c)...)
		t.conn.Send(c, payload)
		t.txKick.Put(struct{}{})
	}
}

// Recv implements Endpoint.
func (t *toe) Recv(pr *sim.Proc, buf *mem.Buffer, off, n int) {
	t.rcv.await(pr, n)
	pr.Sleep(t.cfg.SyscallCost)
	pr.Sleep(t.mem.CopyRate.TxTime(n) + t.mem.TouchCost(buf, off, n))
	copy(buf.Slice(off, n), t.rcv.take(n))
}

// txLoop is the NIC transmit engine: DMA the segment across PCIe and the
// internal bridge, process, emit — with a one-segment DMA prefetch so the
// buses stay busy through engine time.
func (t *toe) txLoop(p *sim.Proc) {
	for {
		t.txKick.Get(p)
		cur, ok := t.conn.NextSegment()
		if !ok {
			continue
		}
		curReady := t.bookDMA(p.Now(), cur.Len+40)
		for {
			next, more := t.conn.NextSegment()
			var nextReady sim.Time
			if more {
				nextReady = t.bookDMA(p.Now(), next.Len+40)
			}
			p.SleepUntil(curReady)
			t.engine.Use(p, t.cfg.NICPerPkt)
			t.emit(cur)
			if !more {
				break
			}
			cur, curReady = next, nextReady
		}
	}
}

// bookDMA chains one host-to-NIC fetch across PCIe and the internal
// bridge. The chain state tracks the PCIe stage only, so consecutive
// segments overlap PCIe and bridge occupancy (the bridge serializes itself
// through its own line bookkeeping).
func (t *toe) bookDMA(now sim.Time, bytes int) sim.Time {
	start := now
	first := t.chainEnd <= start
	if t.chainEnd > start {
		start = t.chainEnd
	}
	t.chainEnd = t.pcie.ReadChained(start, bytes, first)
	return t.bridge.ReadChained(t.chainEnd, bytes, first)
}

func (t *toe) emit(seg tcpsim.Segment) {
	t.port.Send(&fabric.Frame{
		Src:     t.port.ID(),
		Dst:     t.peer.port.ID(),
		Bytes:   t.conn.WireBytes(seg),
		Payload: seg,
	})
}

// rxLoop is the NIC receive engine: protocol work on the TOE, DMA into the
// host socket buffer, completion event.
func (t *toe) rxLoop(p *sim.Proc) {
	for {
		seg := t.rxQ.Get(p)
		if seg.Len == 0 {
			t.engine.Use(p, t.cfg.NICAckTime)
			t.conn.Input(seg)
			continue
		}
		t.engine.Use(p, t.cfg.NICPerPkt)
		recs, ack, need := t.conn.Input(seg)
		if need {
			t.emit(ack)
		}
		// Stream the payload to host memory.
		b1 := t.bridge.WriteFrom(t.eng.Now(), seg.Len)
		done := t.pcie.WriteFrom(b1, seg.Len)
		if len(recs) > 0 {
			recsCopy := recs
			t.eng.At(done+t.cfg.CompletionDelay, func() {
				for _, rec := range recsCopy {
					t.rcv.push(rec.Meta.([]byte))
				}
			})
		}
	}
}
