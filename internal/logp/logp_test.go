package logp

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestGapOrdering(t *testing.T) {
	// Paper, Fig. 5: small-message gap is ~2us for iWARP and Myrinet and
	// ~3us for IB (the worst).
	gIW := Gap(cluster.IWARP, 1, 48)
	gIB := Gap(cluster.IB, 1, 48)
	gMX := Gap(cluster.MXoM, 1, 48)
	if gIB <= gIW || gIB <= gMX {
		t.Errorf("IB gap (%v) should be the largest (iWARP %v, MX %v)", gIB, gIW, gMX)
	}
	if gIW > 2*gMX {
		t.Errorf("iWARP gap (%v) should be near Myrinet's (%v)", gIW, gMX)
	}
}

func TestGapGrowsWithSize(t *testing.T) {
	for _, kind := range []cluster.Kind{cluster.IWARP, cluster.IB, cluster.MXoM} {
		small := Gap(kind, 1, 32)
		big := Gap(kind, 64<<10, 16)
		if big <= small {
			t.Errorf("%v: g(64K)=%v not larger than g(1)=%v", kind, big, small)
		}
	}
}

func TestSenderOverheadSmallAndFlat(t *testing.T) {
	for _, kind := range cluster.Kinds {
		os1 := SenderOverhead(kind, 1, 8)
		if os1 > 2*sim.Microsecond {
			t.Errorf("%v: Os(1) = %v, want ~1us or less", kind, os1)
		}
		// Rendezvous-size sends post only an RTS: Os stays small.
		osBig := SenderOverhead(kind, 256<<10, 4)
		if osBig > 2*sim.Microsecond {
			t.Errorf("%v: Os(256K) = %v, want small (rendezvous posts only RTS)", kind, osBig)
		}
	}
}

func TestReceiverOverheadJump(t *testing.T) {
	// The paper's central Fig. 5 observation: Or jumps at the rendezvous
	// switch for iWARP and IB (no progress while the receiver computes) but
	// stays flat for Myrinet (NIC-driven progression).
	for _, kind := range cluster.VerbsKinds {
		small := ReceiverOverhead(kind, 1<<10, 3)
		big := ReceiverOverhead(kind, 128<<10, 3)
		if big < 10*small {
			t.Errorf("%v: Or did not jump at rendezvous sizes: %v -> %v", kind, small, big)
		}
	}
	mxSmall := ReceiverOverhead(cluster.MXoM, 1<<10, 3)
	mxBig := ReceiverOverhead(cluster.MXoM, 128<<10, 3)
	if mxBig > 4*mxSmall {
		t.Errorf("MXoM: Or jumped (%v -> %v) despite the progression thread", mxSmall, mxBig)
	}
}

func TestMeasureBundles(t *testing.T) {
	p := Measure(cluster.IB, 1024)
	if p.G <= 0 || p.Os <= 0 || p.Or <= 0 {
		t.Errorf("Measure returned non-positive params: %+v", p)
	}
	if p.Os >= p.G {
		t.Errorf("Os (%v) should be below g (%v)", p.Os, p.G)
	}
}
