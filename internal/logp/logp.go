// Package logp measures the parameterized-LogP parameters of an MPI stack
// (Kielmann, Bal and Verstoep, "Fast measurement of LogP parameters for
// message passing platforms"), as the paper's Section 6.3 does:
//
//	g(m)  — the gap: minimum interval between consecutive message
//	        transmissions, measured by saturating the channel.
//	Os(m) — sender overhead: CPU time spent in the send call.
//	Or(m) — receiver overhead: CPU time to complete a receive whose data
//	        has (potentially) already arrived. Receives are pre-posted and
//	        the receiver then delays, so a stack with independent progress
//	        (MX's NIC-driven rendezvous) completes the transfer during the
//	        delay, while call-driven stacks (MPICH/MVAPICH on iWARP and IB)
//	        pay the whole rendezvous inside MPI_Wait — the paper's
//	        "dramatic jump in the receiver overhead ... except for Myrinet".
package logp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Params holds the three measured parameters for one message size.
type Params struct {
	G  sim.Time
	Os sim.Time
	Or sim.Time
}

// Measure returns the LogP parameters of `kind` at message size m.
func Measure(kind cluster.Kind, m int) Params {
	return Params{
		G:  Gap(kind, m, 64),
		Os: SenderOverhead(kind, m, 32),
		Or: ReceiverOverhead(kind, m, 8),
	}
}

// Gap measures g(m) by streaming k messages back to back and dividing the
// steady-state interval by k.
func Gap(kind cluster.Kind, m, k int) sim.Time {
	tb, w := mpi.DefaultWorld(kind, 2)
	defer tb.Close()
	var g sim.Time
	tb.Eng.Go("sender", func(pr *sim.Proc) {
		p := w.Rank(0)
		buf := p.Host().Mem.Alloc(max(m, 1))
		buf.Fill(1)
		p.Barrier(pr)
		start := pr.Now()
		reqs := make([]*mpi.Request, k)
		for i := 0; i < k; i++ {
			reqs[i] = p.Isend(pr, 1, 1, buf, 0, m)
		}
		p.WaitAll(pr, reqs)
		// Wait for the receiver's final ack so the tail of the burst is
		// included in the interval.
		p.Recv(pr, 1, 2, buf, 0, 0)
		g = (pr.Now() - start) / sim.Time(k)
	})
	tb.Eng.Go("receiver", func(pr *sim.Proc) {
		p := w.Rank(1)
		buf := p.Host().Mem.Alloc(max(m, 1))
		reqs := make([]*mpi.Request, k)
		for i := 0; i < k; i++ {
			reqs[i] = p.Irecv(pr, 0, 1, buf, 0, m)
		}
		p.Barrier(pr)
		p.WaitAll(pr, reqs)
		p.Send(pr, 0, 2, buf, 0, 0)
	})
	mustRun(tb)
	return g
}

// SenderOverhead measures Os(m): the average duration of the non-blocking
// send call itself.
func SenderOverhead(kind cluster.Kind, m, iters int) sim.Time {
	tb, w := mpi.DefaultWorld(kind, 2)
	defer tb.Close()
	var os sim.Time
	tb.Eng.Go("sender", func(pr *sim.Proc) {
		p := w.Rank(0)
		buf := p.Host().Mem.Alloc(max(m, 1))
		buf.Fill(1)
		p.Barrier(pr)
		var reqs []*mpi.Request
		for i := 0; i < iters; i++ {
			t0 := pr.Now()
			reqs = append(reqs, p.Isend(pr, 1, 1, buf, 0, m))
			os += pr.Now() - t0
			// Pace the sends so each call observes an idle channel.
			p.WaitAll(pr, reqs)
			reqs = reqs[:0]
			pr.Sleep(200 * sim.Microsecond)
		}
	})
	tb.Eng.Go("receiver", func(pr *sim.Proc) {
		p := w.Rank(1)
		buf := p.Host().Mem.Alloc(max(m, 1))
		p.Barrier(pr)
		for i := 0; i < iters; i++ {
			p.Recv(pr, 0, 1, buf, 0, m)
		}
	})
	mustRun(tb)
	return os / sim.Time(iters)
}

// ReceiverOverhead measures Or(m): receives are pre-posted, the receiver
// delays until the message must have arrived (or stalled waiting for
// progress), then the cost of MPI_Wait is measured.
func ReceiverOverhead(kind cluster.Kind, m, iters int) sim.Time {
	tb, w := mpi.DefaultWorld(kind, 2)
	defer tb.Close()
	// The delay must exceed the full transfer time of the largest message.
	delay := 20*sim.Millisecond + sim.Time(m)*sim.Microsecond/1000
	var or sim.Time
	tb.Eng.Go("receiver", func(pr *sim.Proc) {
		p := w.Rank(1)
		buf := p.Host().Mem.Alloc(max(m, 1))
		p.Barrier(pr)
		for i := 0; i < iters; i++ {
			req := p.Irecv(pr, 0, 1, buf, 0, m)
			p.Send(pr, 0, 2, buf, 0, 0) // tell the sender the recv is posted
			pr.Sleep(delay)             // "compute" while the message arrives
			t0 := pr.Now()
			req.Wait(pr)
			or += pr.Now() - t0
		}
	})
	tb.Eng.Go("sender", func(pr *sim.Proc) {
		p := w.Rank(0)
		buf := p.Host().Mem.Alloc(max(m, 1))
		buf.Fill(1)
		p.Barrier(pr)
		for i := 0; i < iters; i++ {
			p.Recv(pr, 1, 2, buf, 0, 0)
			p.Send(pr, 1, 1, buf, 0, m)
		}
	})
	mustRun(tb)
	return or / sim.Time(iters)
}

func mustRun(tb *cluster.Testbed) {
	if err := tb.Run(); err != nil {
		panic(fmt.Sprintf("logp: %v", err))
	}
}
