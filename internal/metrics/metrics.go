// Package metrics is a lightweight registry of counters, gauges and
// fixed-bucket histograms for the simulator. It exists so that every
// mechanism the paper's figures rest on — eager/rendezvous switches,
// registration-cache misses, matching-queue traversals, link occupancy —
// can be counted where it happens and read back as one deterministic
// snapshot.
//
// The registry is single-threaded like the simulation itself: instruments
// are plain integers with no atomics, so always-on counting costs a few
// nanoseconds of host time and zero virtual time (simulated results are
// unaffected by whether anyone reads the metrics). All instrument methods
// are nil-receiver safe, so optional instruments need no guards.
//
// Snapshots are deterministic: two identical simulation runs marshal to
// byte-identical JSON (encoding/json orders map keys), which the
// determinism regression tests rely on.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Counter is a monotonically-increasing count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (n may not be negative).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("metrics: counter add %d", n))
	}
	c.v += n
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value that also remembers its high-water mark
// (queue depths, pinned bytes).
type Gauge struct {
	v, max int64
	set    bool
}

// Set replaces the value, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// Add adjusts the value by d (d may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (the largest value ever Set).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram is a fixed-bucket distribution. Bounds are ascending bucket
// upper limits; one implicit overflow bucket catches everything above the
// last bound. Scalar statistics ride a stats.Summary so an empty histogram
// is distinguishable from one full of zeros.
type Histogram struct {
	bounds []float64
	counts []int64
	sum    stats.Summary
}

// Observe folds one sample into the histogram.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i]++
	h.sum.Add(x)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Count
}

// Summary returns the scalar statistics of the observed samples.
func (h *Histogram) Summary() stats.Summary {
	if h == nil {
		return stats.Summary{}
	}
	return h.sum
}

// ExpBuckets returns n ascending bounds starting at start, each factor times
// the previous: the usual shape for latency distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("metrics: bad bucket spec (%g, %g, %d)", start, factor, n))
	}
	out := make([]float64, n)
	x := start
	for i := range out {
		out[i] = x
		x *= factor
	}
	return out
}

// Registry holds one simulation's instruments, keyed by name. Get-or-create
// lookups are meant for construction time; hot paths should cache the
// returned instrument.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Bounds must be ascending; re-requesting an existing
// histogram ignores the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
			}
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// GaugeSnapshot is one gauge's frozen state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSnapshot is one histogram's frozen state. Counts has one more
// entry than Bounds (the overflow bucket).
type HistogramSnapshot struct {
	Bounds  []float64     `json:"bounds"`
	Counts  []int64       `json:"counts"`
	Summary stats.Summary `json:"summary"`
}

// Snapshot is a frozen, fully-owned copy of a registry: mutating the
// registry afterwards does not change it.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.v, Max: g.max}
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Bounds:  append([]float64(nil), h.bounds...),
			Counts:  append([]int64(nil), h.counts...),
			Summary: h.sum,
		}
	}
	return s
}

// MarshalJSON renders the snapshot deterministically (map keys sorted by
// encoding/json).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // drop the method to avoid recursion
	return json.Marshal(alias(s))
}

// WriteJSON writes an indented, deterministic JSON dump of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
