package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c"); again != c {
		t.Fatalf("re-lookup returned a different counter")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestGaugeHighWaterMark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if got := g.Value(); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
	if got := g.Max(); got != 7 {
		t.Fatalf("max = %d, want 7", got)
	}

	// A gauge that only ever holds negative values must report that value as
	// its high-water mark, not zero.
	n := r.Gauge("neg")
	n.Set(-9)
	if got := n.Max(); got != -9 {
		t.Fatalf("negative-only max = %d, want -9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(x)
	}
	snap := r.Snapshot().Histograms["h"]
	// Bounds are upper limits (inclusive): 0.5 and 1 land in bucket 0,
	// 2 and 10 in bucket 1, 11 in bucket 2, 1000 overflows.
	want := []int64{2, 2, 1, 1}
	if len(snap.Counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(snap.Counts), len(want))
	}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", snap.Counts, want)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	s := h.Summary()
	if s.Min != 0.5 || s.Max != 1000 {
		t.Fatalf("summary min/max = %g/%g, want 0.5/1000", s.Min, s.Max)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatalf("descending bounds did not panic")
		}
	}()
	r.Histogram("bad", []float64{10, 1})
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e3, 4, 4)
	want := []float64{1e3, 4e3, 16e3, 64e3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", []float64{1})
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Fatalf("nil instruments recorded something")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2})
	c.Inc()
	g.Set(5)
	h.Observe(1)

	snap := r.Snapshot()
	c.Inc()
	g.Set(50)
	h.Observe(2)

	if snap.Counters["c"] != 1 {
		t.Fatalf("snapshot counter mutated: %d", snap.Counters["c"])
	}
	if gs := snap.Gauges["g"]; gs.Value != 5 || gs.Max != 5 {
		t.Fatalf("snapshot gauge mutated: %+v", gs)
	}
	if hs := snap.Histograms["h"]; hs.Summary.Count != 1 || hs.Counts[0] != 1 || hs.Counts[1] != 0 {
		t.Fatalf("snapshot histogram mutated: %+v", hs)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Inc()
		r.Gauge("g").Set(3)
		r.Histogram("h", []float64{1, 10}).Observe(4)
		return r
	}
	var one, two bytes.Buffer
	if err := build().WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatalf("two identical registries marshalled differently:\n%s\nvs\n%s", one.Bytes(), two.Bytes())
	}

	var decoded Snapshot
	if err := json.Unmarshal(one.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if decoded.Counters["a"] != 1 || decoded.Counters["b"] != 2 {
		t.Fatalf("round-trip lost counters: %+v", decoded.Counters)
	}
}
