package ib

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/verbs"
)

type rig struct {
	eng      *sim.Engine
	net      *fabric.Network
	m0, m1   *mem.Memory
	h0, h1   *HCA
	qp0, qp1 *QP
}

func ibFabric(eng *sim.Engine) *fabric.Network {
	return fabric.New(eng, fabric.Config{
		Name:          "ib-4x",
		LinkRate:      sim.Rate(1e9), // 4X SDR data rate: 1 GB/s
		FrameOverhead: 8,
		HeaderBytes:   64,
		SwitchLatency: 200 * sim.Nanosecond,
		PropDelay:     25 * sim.Nanosecond,
		CutThrough:    true,
	})
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := ibFabric(eng)
	m0 := mem.NewMemory(eng, "host0")
	m1 := mem.NewMemory(eng, "host1")
	cfg := DefaultConfig()
	h0 := New(eng, "hca0", m0, net, cfg)
	h1 := New(eng, "hca1", m1, net, cfg)
	qp0, qp1 := Connect(h0, h1)
	return &rig{eng: eng, net: net, m0: m0, m1: m1, h0: h0, h1: h1, qp0: qp0, qp1: qp1}
}

func (r *rig) close() { r.eng.Close() }

func TestRDMAWriteMovesData(t *testing.T) {
	r := newRig(t)
	defer r.close()
	src := r.m0.Alloc(10_000)
	dst := r.m1.Alloc(10_000)
	src.Fill(42)
	r.eng.Go("bench", func(p *sim.Proc) {
		lsrc := r.h0.Reg().RegisterFree(src, 0, 10_000)
		ldst := r.h1.Reg().RegisterFree(dst, 0, 10_000)
		r.qp0.PostSend(p, verbs.WR{ID: 1, Op: verbs.OpWrite, Local: lsrc, Len: 10_000, RemoteKey: ldst.Key})
		placed := 0
		for placed < 10_000 {
			pl := r.qp1.Placements().Get(p)
			placed += pl.Len
		}
		comp := r.qp0.SendCQ().Poll(p)
		if comp.WRID != 1 || comp.Op != verbs.OpWrite {
			t.Errorf("completion = %+v", comp)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(42, 0, 10_000) {
		t.Error("RDMA write did not move data")
	}
}

func TestSmallWriteLatencyRange(t *testing.T) {
	r := newRig(t)
	defer r.close()
	src := r.m0.Alloc(64)
	dst := r.m1.Alloc(64)
	src.Fill(1)
	var lat sim.Time
	r.eng.Go("bench", func(p *sim.Proc) {
		lsrc := r.h0.Reg().RegisterFree(src, 0, 64)
		ldst := r.h1.Reg().RegisterFree(dst, 0, 64)
		// Warm the context cache so we measure steady state, like the
		// paper's averaged iterations.
		r.qp0.PostSend(p, verbs.WR{ID: 0, Op: verbs.OpWrite, Local: lsrc, Len: 64, RemoteKey: ldst.Key})
		r.qp1.Placements().Get(p)
		start := p.Now()
		r.qp0.PostSend(p, verbs.WR{ID: 1, Op: verbs.OpWrite, Local: lsrc, Len: 64, RemoteKey: ldst.Key})
		r.qp1.Placements().Get(p)
		p.Sleep(r.h1.PollDetect())
		lat = p.Now() - start
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Paper: 4.53us one-way for small RDMA writes on Mellanox 4X.
	if lat < sim.Micros(3.4) || lat > sim.Micros(5.8) {
		t.Errorf("one-way 64B RDMA write latency = %v, want ~4.5us", lat)
	}
}

func TestSendRecv(t *testing.T) {
	r := newRig(t)
	defer r.close()
	src := r.m0.Alloc(50_000)
	dst := r.m1.Alloc(50_000)
	src.Fill(7)
	r.eng.Go("receiver", func(p *sim.Proc) {
		ldst := r.h1.Reg().RegisterFree(dst, 0, 50_000)
		r.qp1.PostRecv(p, verbs.WR{ID: 9, Op: verbs.OpRecv, Local: ldst})
		comp := r.qp1.RecvCQ().Poll(p)
		if comp.WRID != 9 || comp.Len != 50_000 {
			t.Errorf("recv completion = %+v", comp)
		}
	})
	r.eng.Go("sender", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		lsrc := r.h0.Reg().RegisterFree(src, 0, 50_000)
		r.qp0.PostSend(p, verbs.WR{ID: 10, Op: verbs.OpSend, Local: lsrc, Len: 50_000})
		comp := r.qp0.SendCQ().Poll(p)
		if comp.WRID != 10 {
			t.Errorf("send completion = %+v", comp)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(7, 0, 50_000) {
		t.Error("send/recv did not move data")
	}
}

func TestRDMARead(t *testing.T) {
	r := newRig(t)
	defer r.close()
	remote := r.m1.Alloc(8000)
	local := r.m0.Alloc(8000)
	remote.Fill(3)
	r.eng.Go("reader", func(p *sim.Proc) {
		lloc := r.h0.Reg().RegisterFree(local, 0, 8000)
		lrem := r.h1.Reg().RegisterFree(remote, 0, 8000)
		r.qp0.PostSend(p, verbs.WR{ID: 5, Op: verbs.OpRead, Local: lloc, Len: 8000, RemoteKey: lrem.Key})
		comp := r.qp0.SendCQ().Poll(p)
		if comp.Op != verbs.OpRead || comp.Len != 8000 {
			t.Errorf("read completion = %+v", comp)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !local.Equal(3, 0, 8000) {
		t.Error("RDMA read did not fetch data")
	}
}

func TestStreamingBandwidth(t *testing.T) {
	r := newRig(t)
	defer r.close()
	const msg = 1 << 20
	const count = 32
	src := r.m0.Alloc(msg)
	dst := r.m1.Alloc(msg)
	src.Fill(1)
	var start, end sim.Time
	r.eng.Go("bench", func(p *sim.Proc) {
		lsrc := r.h0.Reg().RegisterFree(src, 0, msg)
		ldst := r.h1.Reg().RegisterFree(dst, 0, msg)
		start = p.Now()
		for i := 0; i < count; i++ {
			r.qp0.PostSend(p, verbs.WR{ID: uint64(i), Op: verbs.OpWrite, Local: lsrc, Len: msg, RemoteKey: ldst.Key})
		}
		placed := 0
		for placed < count*msg {
			pl := r.qp1.Placements().Get(p)
			placed += pl.Len
		}
		end = p.Now()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	bw := sim.MBpsOf(count*msg, end-start)
	// IB verbs saturate ~97% of the 1 GB/s 4X data rate (~970 MB/s).
	if bw < 930 || bw > 1000 {
		t.Errorf("streaming bandwidth = %.0f MB/s, want ~970", bw)
	}
}

func TestContextCacheLRU(t *testing.T) {
	c := newCtxCache(2)
	if !c.touch(0) || !c.touch(1) {
		t.Error("cold touches should miss")
	}
	if c.touch(0) {
		t.Error("warm touch missed")
	}
	if !c.touch(2) { // evicts 1 (LRU)
		t.Error("expected miss for 2")
	}
	if !c.touch(1) {
		t.Error("1 should have been evicted")
	}
	if c.touch(2) {
		t.Error("2 should still be cached")
	}
	if c.misses != 4 || c.hits != 2 {
		t.Errorf("misses=%d hits=%d", c.misses, c.hits)
	}
}

func TestManyConnectionsPayContextMisses(t *testing.T) {
	r := newRig(t)
	defer r.close()
	const nqp = 16 // twice the context cache size
	qps0 := make([]*QP, nqp)
	qps1 := make([]*QP, nqp)
	qps0[0], qps1[0] = r.qp0, r.qp1
	for i := 1; i < nqp; i++ {
		qps0[i], qps1[i] = Connect(r.h0, r.h1)
	}
	src := r.m0.Alloc(64)
	dst := r.m1.Alloc(64)
	src.Fill(1)
	r.eng.Go("bench", func(p *sim.Proc) {
		lsrc := r.h0.Reg().RegisterFree(src, 0, 64)
		ldst := r.h1.Reg().RegisterFree(dst, 0, 64)
		// Round-robin over all QPs several times: every message misses.
		for round := 0; round < 4; round++ {
			for i := 0; i < nqp; i++ {
				qps0[i].PostSend(p, verbs.WR{ID: uint64(i), Op: verbs.OpWrite, Local: lsrc, Len: 64, RemoteKey: ldst.Key})
				qps1[i].Placements().Get(p)
			}
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	// With 16 QPs cycling through an 8-entry cache, essentially every
	// message reloads a context on the send side.
	if r.h0.CtxMisses() < int64(nqp*3) {
		t.Errorf("h0 context misses = %d, want >= %d", r.h0.CtxMisses(), nqp*3)
	}
}

func TestSerialEngineOrdersQPs(t *testing.T) {
	// Two QPs posting simultaneously share the capacity-1 send processor:
	// their wire departures must be spaced by at least TxPktTime.
	r := newRig(t)
	defer r.close()
	qpA0, qpA1 := r.qp0, r.qp1
	qpB0, qpB1 := Connect(r.h0, r.h1)
	src := r.m0.Alloc(64)
	dstA := r.m1.Alloc(64)
	dstB := r.m1.Alloc(64)
	src.Fill(1)
	var tA, tB sim.Time
	r.eng.Go("a", func(p *sim.Proc) {
		lsrc := r.h0.Reg().RegisterFree(src, 0, 64)
		ldst := r.h1.Reg().RegisterFree(dstA, 0, 64)
		qpA0.PostSend(p, verbs.WR{ID: 1, Op: verbs.OpWrite, Local: lsrc, Len: 64, RemoteKey: ldst.Key})
		qpA1.Placements().Get(p)
		tA = p.Now()
	})
	r.eng.Go("b", func(p *sim.Proc) {
		lsrc := r.h0.Reg().RegisterFree(src, 0, 64)
		ldst := r.h1.Reg().RegisterFree(dstB, 0, 64)
		qpB0.PostSend(p, verbs.WR{ID: 2, Op: verbs.OpWrite, Local: lsrc, Len: 64, RemoteKey: ldst.Key})
		qpB1.Placements().Get(p)
		tB = p.Now()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	gap := tB - tA
	if gap < 0 {
		gap = -gap
	}
	if gap < r.h0.cfg.TxPktTime/2 {
		t.Errorf("concurrent QP completions %v apart; engine serialization missing", gap)
	}
}

func TestSendBeforeRecvPosted(t *testing.T) {
	r := newRig(t)
	defer r.close()
	src := r.m0.Alloc(256)
	dst := r.m1.Alloc(256)
	src.Fill(5)
	r.eng.Go("sender", func(p *sim.Proc) {
		lsrc := r.h0.Reg().RegisterFree(src, 0, 256)
		r.qp0.PostSend(p, verbs.WR{ID: 1, Op: verbs.OpSend, Local: lsrc, Len: 256})
	})
	r.eng.Go("receiver", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond)
		ldst := r.h1.Reg().RegisterFree(dst, 0, 256)
		r.qp1.PostRecv(p, verbs.WR{ID: 2, Op: verbs.OpRecv, Local: ldst})
		comp := r.qp1.RecvCQ().Poll(p)
		if comp.Len != 256 {
			t.Errorf("completion = %+v", comp)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(5, 0, 256) {
		t.Error("early send lost data")
	}
}
