// Package ib models a Mellanox-style 4X InfiniBand host channel adapter
// (the paper's MHEA28-XT "MemFree" card) and its reliable-connection (RC)
// transport: queue pairs, 2 KB MTU packetization, hardware ACKs, RDMA Write
// / Read / Send-Receive, and — central to the paper's Figure 2 — a
// processor-based NIC core whose small QP-context cache serializes traffic
// once more than a handful of connections are active.
//
// Contrast with internal/iwarp: the iWARP RNIC has a pipelined protocol
// engine (many concurrent contexts), while this HCA processes one packet at
// a time per direction and pays a context reload whenever it switches to a
// QP that fell out of its context cache. The paper speculates exactly this
// ("we speculate that the processor-based communication in IB NIC core
// hardware is the main reason behind the serialization").
package ib

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pci"
	"repro/internal/sim"
)

// Config is the HCA cost model.
type Config struct {
	// MTU is the IB path MTU (2048 on the testbed).
	MTU int
	// PacketHeader is LRH+BTH+ICRC overhead per packet.
	PacketHeader int
	// TxPktTime and RxPktTime are processing-engine occupancy per packet.
	TxPktTime sim.Time
	RxPktTime sim.Time
	// AckTime is engine occupancy for transport ACK handling.
	AckTime sim.Time
	// CqeTime is extra send-processor occupancy after the last packet of a
	// message leaves (completion bookkeeping / CQE writeback); it gates the
	// message issue rate (the LogP gap) without adding to one-way latency.
	CqeTime sim.Time
	// CtxCacheSize is the number of QP contexts the engine holds; switching
	// to an uncached QP costs CtxMissTime (fetch from adapter/host memory —
	// the MemFree card keeps contexts in host memory).
	CtxCacheSize int
	CtxMissTime  sim.Time
	// InlineSize is the largest payload carried inside the WQE itself,
	// avoiding a second DMA read for small sends.
	InlineSize int
	// VLs and VLCredits arm credit-based link-level flow control on the
	// host link: each virtual lane holds VLCredits packet credits, a QP's
	// packets ride VL qpn mod VLs, and a packet may not enter the send
	// processor until its lane has a credit. A credit returns CreditReturn
	// after the packet's uplink serialization ends — the switch forwarding
	// it and granting fresh buffer — so a stalled or congested uplink
	// starves the lane and the sender stalls instead of overflowing the
	// switch (IB loses nothing; it waits). VLCredits == 0 disables flow
	// control entirely (infinite credits, the historical model). All
	// bookkeeping lives on the sending HCA's engine, which keeps sharded
	// runs deterministic.
	VLs          int
	VLCredits    int
	CreditReturn sim.Time

	// PostOverhead is host-CPU time per posted work request.
	PostOverhead sim.Time
	// PollDetect is the completion/buffer polling granularity.
	PollDetect sim.Time
	// RegCost prices ibv_reg_mr-style registration.
	RegCost mem.RegCost
	// PCIe is the host slot configuration.
	PCIe pci.Config
}

// DefaultConfig approximates the paper's MHEA28-XT on PCIe x8. The MemFree
// card keeps QP context in host memory, so context fetches and CQE writes
// ride the same chipset path as data; its effective shared-path headroom is
// lower than the NetEffect card's (the paper's both-way results: iWARP
// ~1950 MB/s vs IB ~89% of 2 GB/s).
func DefaultConfig() Config {
	pcie := pci.PCIeX8()
	pcie.SharedRate = 1820 * sim.MBps
	return Config{
		MTU:          2048,
		PacketHeader: 30,
		TxPktTime:    sim.Micros(1.10),
		RxPktTime:    sim.Micros(1.10),
		AckTime:      sim.Micros(0.15),
		CqeTime:      sim.Micros(0.80),
		CtxCacheSize: 8,
		CtxMissTime:  sim.Micros(3.0),
		InlineSize:   128,
		PostOverhead: sim.Micros(0.25),
		PollDetect:   sim.Micros(0.10),
		RegCost: mem.RegCost{
			Base:      sim.Micros(30),
			PerPage:   sim.Micros(14),
			DeregBase: sim.Micros(2),
		},
		PCIe: pcie,
	}
}

// HCA is one InfiniBand adapter.
type HCA struct {
	eng     *sim.Engine
	name    string
	cfg     Config
	hostMem *mem.Memory
	reg     *mem.RegTable
	pcie    *pci.Bus
	port    *fabric.Port

	txEngine *sim.Resource // the embedded send processor (capacity 1)
	rxEngine *sim.Resource // the embedded receive processor (capacity 1)
	ctx      *ctxCache
	chainEnd sim.Time // host-DMA read pipeline chain

	// vls are the per-virtual-lane credit pools (nil when VLCredits == 0:
	// no link-level flow control, byte-identical to the pre-credit model).
	vls          []*sim.Resource
	creditStalls int64

	qps []*QP

	cPktsTx, cPktsRx, cAcksRx *metrics.Counter
	cCtxHits, cCtxMisses      *metrics.Counter
	cReadReqs, cEngineStalls  *metrics.Counter
	cCreditStalls             *metrics.Counter
}

// New creates an HCA attached to hostMem and the IB fabric.
func New(eng *sim.Engine, name string, hostMem *mem.Memory, net *fabric.Network, cfg Config) *HCA {
	h := &HCA{
		eng:      eng,
		name:     name,
		cfg:      cfg,
		hostMem:  hostMem,
		reg:      mem.NewRegTable(eng, name, cfg.RegCost),
		pcie:     pci.New(eng, cfg.PCIe),
		txEngine: sim.NewResource(eng, name+"/tx-proc", 1),
		rxEngine: sim.NewResource(eng, name+"/rx-proc", 1),
		ctx:      newCtxCache(cfg.CtxCacheSize),
	}
	if cfg.VLCredits < 0 || cfg.VLs < 0 {
		panic(fmt.Sprintf("ib %s: negative VL config %d/%d", name, cfg.VLs, cfg.VLCredits))
	}
	if cfg.VLCredits > 0 {
		if cfg.VLs == 0 {
			cfg.VLs = 1
		}
		if cfg.CreditReturn <= 0 {
			cfg.CreditReturn = sim.Microsecond
		}
		h.cfg = cfg
		h.vls = make([]*sim.Resource, cfg.VLs)
		for i := range h.vls {
			h.vls[i] = sim.NewResource(eng, fmt.Sprintf("%s/vl%d-credits", name, i), cfg.VLCredits)
		}
	}
	h.port = net.Attach(h)
	mreg := eng.Metrics()
	h.cPktsTx = mreg.Counter("ib.pkts_tx")
	h.cPktsRx = mreg.Counter("ib.pkts_rx")
	h.cAcksRx = mreg.Counter("ib.acks_rx")
	h.cCtxHits = mreg.Counter("ib.ctx_hits")
	h.cCtxMisses = mreg.Counter("ib.ctx_misses")
	h.cReadReqs = mreg.Counter("ib.read_requests")
	h.cEngineStalls = mreg.Counter("ib.engine_stalls")
	h.cCreditStalls = mreg.Counter("ib.credit_stalls")
	return h
}

// CreditStalls returns how many packets found their virtual lane out of
// credits and had to wait (zero with flow control disabled).
func (h *HCA) CreditStalls() int64 { return h.creditStalls }

// touchCtx loads the context for qpn, counting hit/miss, and reports whether
// it was a miss (the engine then pays CtxMissTime).
func (h *HCA) touchCtx(qpn int) bool {
	miss := h.ctx.touch(qpn)
	if miss {
		h.cCtxMisses.Inc()
	} else {
		h.cCtxHits.Inc()
	}
	return miss
}

// Name implements verbs.NIC.
func (h *HCA) Name() string { return h.name }

// Reg implements verbs.NIC.
func (h *HCA) Reg() *mem.RegTable { return h.reg }

// Mem implements verbs.NIC.
func (h *HCA) Mem() *mem.Memory { return h.hostMem }

// Config returns the HCA's cost model.
func (h *HCA) Config() Config { return h.cfg }

// PollDetect returns the polling granularity.
func (h *HCA) PollDetect() sim.Time { return h.cfg.PollDetect }

// CtxMisses returns how many QP-context reloads the engine has done.
func (h *HCA) CtxMisses() int64 { return h.ctx.misses }

// StallEngines implements faults.EngineStaller: both embedded processors
// stop accepting work for d virtual time. The HCA's engines have capacity
// one, so a stall is simply an exclusive occupancy of each.
func (h *HCA) StallEngines(d sim.Time) {
	h.eng.Go(h.name+"/engine-stall", func(p *sim.Proc) {
		start := h.eng.Now()
		h.txEngine.Acquire(p, 1)
		h.rxEngine.Acquire(p, 1)
		p.Sleep(d)
		h.rxEngine.Release(1)
		h.txEngine.Release(1)
		h.cEngineStalls.Inc()
		h.eng.Trc().Complete(h.name, "engine-stall", int64(start), int64(h.eng.Now()))
	})
}

// Deliver implements fabric.Endpoint. The fabric's Corrupt mark is ignored:
// IB's link-level CRC retry sits below the layers this model prices, so a
// damaged packet is retried invisibly at the link (corruption injection is
// an iWARP/Ethernet experiment — see internal/faults).
func (h *HCA) Deliver(f *fabric.Frame) {
	pk := f.Payload.(*packet)
	if pk.dstQPN < 0 || pk.dstQPN >= len(h.qps) {
		panic(fmt.Sprintf("ib %s: packet for unknown QP %d", h.name, pk.dstQPN))
	}
	pk.cause = f.Cause // chain rx processing from the delivering wire hop
	h.qps[pk.dstQPN].rxQ.Put(pk)
}

// Connect establishes an RC queue pair between two HCAs.
func Connect(a, b *HCA) (*QP, *QP) {
	if a == b {
		panic("ib: loopback QP not supported")
	}
	qa := a.newQP()
	qb := b.newQP()
	qa.peer, qb.peer = qb, qa
	return qa, qb
}

// ctxCache is the LRU QP-context cache shared by the send and receive
// processors.
type ctxCache struct {
	cap    int
	order  []int // LRU first
	member map[int]bool
	misses int64
	hits   int64
}

func newCtxCache(capacity int) *ctxCache {
	return &ctxCache{cap: capacity, member: make(map[int]bool)}
}

// touch loads the context for qpn and reports whether it was a miss.
func (c *ctxCache) touch(qpn int) bool {
	if c.member[qpn] {
		c.hits++
		for i, q := range c.order {
			if q == qpn {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		c.order = append(c.order, qpn)
		return false
	}
	c.misses++
	if len(c.order) >= c.cap {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.member, old)
	}
	c.member[qpn] = true
	c.order = append(c.order, qpn)
	return true
}
