package ib

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// creditRig mirrors newRig but with a caller-supplied HCA config, for
// exercising the VL flow-control knobs.
func creditRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := ibFabric(eng)
	m0 := mem.NewMemory(eng, "host0")
	m1 := mem.NewMemory(eng, "host1")
	h0 := New(eng, "hca0", m0, net, cfg)
	h1 := New(eng, "hca1", m1, net, cfg)
	qp0, qp1 := Connect(h0, h1)
	return &rig{eng: eng, net: net, m0: m0, m1: m1, h0: h0, h1: h1, qp0: qp0, qp1: qp1}
}

// creditWrite pushes one large RDMA write through a rig and returns the
// sender-side completion time.
func creditWrite(t *testing.T, r *rig, size int) sim.Time {
	t.Helper()
	defer r.close()
	src := r.m0.Alloc(size)
	dst := r.m1.Alloc(size)
	src.Fill(3)
	var done sim.Time
	r.eng.Go("bench", func(p *sim.Proc) {
		lsrc := r.h0.Reg().RegisterFree(src, 0, size)
		ldst := r.h1.Reg().RegisterFree(dst, 0, size)
		r.qp0.PostSend(p, verbs.WR{ID: 1, Op: verbs.OpWrite, Local: lsrc, Len: size, RemoteKey: ldst.Key})
		r.qp0.SendCQ().Poll(p)
		done = p.Now()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(3, 0, size) {
		t.Fatal("write did not move data")
	}
	return done
}

// TestCreditExhaustionStallsSender: with a single credit per lane and a slow
// credit return, every packet after the first must wait for the previous
// credit to come home — the lossless stall-don't-drop behavior. The same
// transfer with flow control off neither stalls nor slows.
func TestCreditExhaustionStallsSender(t *testing.T) {
	const size = 64 << 10

	off := creditRig(t, DefaultConfig())
	h := off.h0
	base := creditWrite(t, off, size)
	if h.CreditStalls() != 0 {
		t.Fatalf("flow control off, yet %d credit stalls", h.CreditStalls())
	}

	cfg := DefaultConfig()
	cfg.VLs = 1
	cfg.VLCredits = 1
	cfg.CreditReturn = 50 * sim.Microsecond
	on := creditRig(t, cfg)
	h = on.h0
	starved := creditWrite(t, on, size)
	if h.CreditStalls() == 0 {
		t.Error("single-credit lane never stalled")
	}
	// With one credit and a 50us return, the transfer is pinned to roughly
	// one packet per 50us: it must be dramatically slower than the free run.
	if starved < 2*base {
		t.Errorf("starved transfer took %v vs %v free; credits did not throttle", starved, base)
	}
}

// TestGenerousCreditsDoNotStall: enough credits to cover the in-flight
// window behaves like the unthrottled model apart from bookkeeping.
func TestGenerousCreditsDoNotStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VLs = 2
	cfg.VLCredits = 1024
	cfg.CreditReturn = sim.Microsecond
	r := creditRig(t, cfg)
	h := r.h0
	creditWrite(t, r, 64<<10)
	if h.CreditStalls() != 0 {
		t.Errorf("generous credits stalled %d times", h.CreditStalls())
	}
}
