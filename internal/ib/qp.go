package ib

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// pktKind classifies an IB packet.
type pktKind int

const (
	pktData    pktKind = iota // RDMA Write, Send, or RDMA Read Response data
	pktReadReq                // RDMA Read Request
	pktAck                    // transport ACK (one per message)
)

// packet is one IB packet on the fabric.
type packet struct {
	dstQPN  int
	kind    pktKind
	op      verbs.Op // OpWrite or OpSend for pktData
	payload []byte
	n       int
	offset  int
	stag    mem.RKey
	first   bool
	last    bool
	msg     *txMsg
	rdMsg   *txMsg
	rd      readReq
	ackFor  *txMsg

	// cause is the causal ref of the engine pass that emitted the packet;
	// the receive side chains its rx pass from it (in-memory only, never
	// wire bytes).
	cause trace.Ref
}

type readReq struct {
	srcKey  mem.RKey
	srcOff  int
	n       int
	sinkKey mem.RKey
	sinkOff int
	msg     *txMsg
}

// txMsg tracks an outgoing RC message.
type txMsg struct {
	wr  verbs.WR
	qpn int // origin QP number on the sending HCA
}

// inbound assembles an incoming Send message. cause tracks the rx pass of
// the most recent packet for deferred (early-arrival) completion.
type inbound struct {
	buf   []byte
	got   int
	total int
	cause trace.Ref
}

// QP is one endpoint of a reliable connection.
type QP struct {
	hca  *HCA
	qpn  int
	peer *QP

	scq    *verbs.CQ
	rcq    *verbs.CQ
	places *sim.Queue[verbs.Placement]
	rxQ    *sim.Queue[*packet]
	sendQ  *sim.Queue[verbs.WR]

	recvQ []verbs.WR
	early []*inbound
	cur   *inbound
	curWR *verbs.WR
}

func (h *HCA) newQP() *QP {
	q := &QP{
		hca:    h,
		qpn:    len(h.qps),
		scq:    verbs.NewCQ(h.eng, h.name+"/scq", h.cfg.PollDetect),
		rcq:    verbs.NewCQ(h.eng, h.name+"/rcq", h.cfg.PollDetect),
		places: sim.NewQueue[verbs.Placement](h.eng, h.name+"/placements"),
		rxQ:    sim.NewQueue[*packet](h.eng, h.name+"/rxq"),
		sendQ:  sim.NewQueue[verbs.WR](h.eng, h.name+"/sq"),
	}
	h.qps = append(h.qps, q)
	h.eng.Go(fmt.Sprintf("%s/qp%d/rx", h.name, q.qpn), q.rxLoop)
	h.eng.Go(fmt.Sprintf("%s/qp%d/tx", h.name, q.qpn), q.txLoop)
	return q
}

// txLoop executes send work requests strictly in order, as the RC send
// queue requires: packets of consecutive messages never interleave within
// one QP.
func (q *QP) txLoop(p *sim.Proc) {
	for {
		wr := q.sendQ.Get(p)
		q.execute(p, wr)
	}
}

// QPN implements verbs.QP.
func (q *QP) QPN() int { return q.qpn }

// SetCQs redirects this QP's completions into caller-provided queues; MPI
// implementations point every QP of a process at one shared CQ. Must be
// called before any traffic flows.
func (q *QP) SetCQs(scq, rcq *verbs.CQ) {
	q.scq = scq
	q.rcq = rcq
}

// SendCQ implements verbs.QP.
func (q *QP) SendCQ() *verbs.CQ { return q.scq }

// RecvCQ implements verbs.QP.
func (q *QP) RecvCQ() *verbs.CQ { return q.rcq }

// Placements implements verbs.QP.
func (q *QP) Placements() *sim.Queue[verbs.Placement] { return q.places }

// PostSend implements verbs.QP.
func (q *QP) PostSend(p *sim.Proc, wr verbs.WR) {
	if wr.Len <= 0 {
		panic(fmt.Sprintf("ib %s: zero-length work request", q.hca.name))
	}
	p.Sleep(q.hca.cfg.PostOverhead)
	now := q.hca.eng.Now()
	at := q.hca.pcie.Doorbell(32)
	if tr := q.hca.eng.Trc(); tr.Enabled() {
		wr.Cause = tr.CompleteR(q.hca.name, "doorbell", int64(now), int64(at),
			trace.Cause(wr.Cause), trace.I64("qpn", int64(q.qpn)))
	}
	q.hca.eng.At(at, func() { q.sendQ.Put(wr) })
}

// PostRecv implements verbs.QP.
func (q *QP) PostRecv(p *sim.Proc, wr verbs.WR) {
	p.Sleep(q.hca.cfg.PostOverhead)
	at := q.hca.pcie.Doorbell(32)
	q.hca.eng.At(at, func() {
		if len(q.early) > 0 {
			m := q.early[0]
			q.early = q.early[1:]
			q.completeEarly(m, wr)
			return
		}
		q.recvQ = append(q.recvQ, wr)
	})
}

// execute runs one WQE on the send processor.
func (q *QP) execute(wp *sim.Proc, wr verbs.WR) {
	h := q.hca
	switch wr.Op {
	case verbs.OpWrite, verbs.OpSend:
		// WQE fetch; small payloads ride inline in the descriptor.
		desc := 64
		inline := wr.Len <= h.cfg.InlineSize
		if inline {
			desc += wr.Len
		}
		t0 := h.eng.Now()
		h.pcie.Read(wp, desc)
		if tr := h.eng.Trc(); tr.Enabled() {
			wr.Cause = tr.CompleteR(h.name, "wqe-fetch", int64(t0), int64(h.eng.Now()),
				trace.Cause(wr.Cause), trace.I64("qpn", int64(q.qpn)))
		}
		msg := &txMsg{wr: wr, qpn: q.qpn}
		q.stream(wp, wr.Op, wr.Local, wr.LocalOff, wr.Len, wr.RemoteKey, wr.RemoteOff, msg, nil, !inline, wr.Cause)
	case verbs.OpRead:
		t0 := h.eng.Now()
		h.pcie.Read(wp, 64)
		if tr := h.eng.Trc(); tr.Enabled() {
			wr.Cause = tr.CompleteR(h.name, "wqe-fetch", int64(t0), int64(h.eng.Now()),
				trace.Cause(wr.Cause), trace.I64("qpn", int64(q.qpn)))
		}
		msg := &txMsg{wr: wr, qpn: q.qpn}
		q.engineSend(wp, true, wr.Cause, &packet{
			dstQPN: q.peer.qpn,
			kind:   pktReadReq,
			n:      28,
			rd: readReq{
				srcKey:  wr.RemoteKey,
				srcOff:  wr.RemoteOff,
				n:       wr.Len,
				sinkKey: wr.Local.Key,
				sinkOff: wr.LocalOff,
				msg:     msg,
			},
		})
	default:
		panic(fmt.Sprintf("ib %s: bad op %v on send queue", h.name, wr.Op))
	}
}

// stream packetizes one message through the send processor. dma controls
// whether payload is fetched from host memory (false for inline sends and
// for read responses sourced by the responder, which still DMA — the
// responder passes true).
func (q *QP) stream(wp *sim.Proc, op verbs.Op, src *mem.Region, srcOff, n int, stag mem.RKey, remoteOff int, msg *txMsg, rdMsg *txMsg, dma bool, cause trace.Ref) {
	h := q.hca
	mtu := h.cfg.MTU
	nsegs := (n + mtu - 1) / mtu

	_ = nsegs
	// Snapshot the message payload once; packets alias into it.
	var snapshot []byte
	if n > 0 {
		snapshot = append([]byte(nil), src.Slice(srcOff, n)...)
	}
	// One-packet DMA prefetch (see iwarp.emitSegments for the rationale).
	var ready sim.Time
	if dma && n > 0 {
		ready = h.dmaRead(wp.Now(), min(mtu, n))
	}
	for off := 0; off < n; off += mtu {
		take := min(mtu, n-off)
		if dma {
			cur := ready
			if next := off + take; next < n {
				ready = h.dmaRead(wp.Now(), min(mtu, n-next))
			}
			wp.SleepUntil(cur)
		}
		pk := &packet{
			dstQPN: q.peer.qpn,
			kind:   pktData,
			op:     op,
			n:      take,
			offset: remoteOff + off,
			stag:   stag,
			first:  off == 0,
			last:   off+take == n,
			msg:    msg,
			rdMsg:  rdMsg,
		}
		if op == verbs.OpSend {
			pk.offset = off
		}
		pk.payload = snapshot[off : off+take]
		q.engineSend(wp, pk.first, cause, pk)
	}
}

// engineSend pushes one packet through the (capacity-1) send processor,
// paying a context reload if this QP fell out of the context cache and the
// completion-writeback cost after the final packet of a message. With
// link-level flow control armed, the packet first takes a credit from its
// virtual lane — stalling the WQE (before it occupies the send processor,
// so other work is not head-of-line blocked by an empty lane) until the
// switch has granted buffer for it.
func (q *QP) engineSend(wp *sim.Proc, firstOfMsg bool, cause trace.Ref, pk *packet) {
	h := q.hca
	var vl *sim.Resource
	if h.vls != nil {
		vl = h.vls[q.qpn%len(h.vls)]
		if !vl.TryAcquire(1) {
			// Lane out of credits: the link ahead has not drained. Count
			// the stall and wait for a credit to return.
			h.creditStalls++
			h.cCreditStalls.Inc()
			vl.Acquire(wp, 1)
		}
	}
	t0 := h.eng.Now()
	h.txEngine.Acquire(wp, 1)
	hold := h.cfg.TxPktTime
	if firstOfMsg && h.touchCtx(q.qpn) {
		hold += h.cfg.CtxMissTime
	}
	wp.Sleep(hold)
	if tr := h.eng.Trc(); tr.Enabled() {
		pk.cause = tr.CompleteR(h.name, "tx-pkt", int64(t0), int64(h.eng.Now()),
			trace.Cause(cause), trace.I64("qpn", int64(q.qpn)), trace.I64("bytes", int64(pk.n)))
	}
	txEnd := q.emit(pk)
	if vl != nil {
		// The credit comes back once the switch has forwarded the packet
		// out of the buffer the credit represents: uplink serialization end
		// plus the (modeled) credit-return round trip. Scheduled on this
		// HCA's own engine, so flow control adds no cross-shard edges. A
		// stalled or congested uplink pushes txEnd out and starves the
		// lane — exactly the lossless backpressure IB trades drops for.
		h.eng.At(txEnd+h.cfg.CreditReturn, func() { vl.Release(1) })
	}
	if pk.last || pk.kind != pktData {
		wp.Sleep(h.cfg.CqeTime)
	}
	h.txEngine.Release(1)
}

// dmaRead books one chained, fair-shared payload fetch and returns its
// completion time.
func (h *HCA) dmaRead(now sim.Time, bytes int) sim.Time {
	start := now
	first := h.chainEnd <= start
	if h.chainEnd > start {
		start = h.chainEnd
	}
	h.chainEnd = h.pcie.ReadChained(start, bytes, first)
	return h.chainEnd
}

// emit puts a packet on the wire and returns when its uplink serialization
// ends (the credit-return anchor for link-level flow control).
func (q *QP) emit(pk *packet) sim.Time {
	q.hca.cPktsTx.Inc()
	return q.hca.port.Send(&fabric.Frame{
		Src:     q.hca.port.ID(),
		Dst:     q.peer.hca.port.ID(),
		Bytes:   pk.n + q.hca.cfg.PacketHeader,
		Payload: pk,
		Flow:    q.qpn, // per-connection ECMP path on multi-switch fabrics
		Cause:   pk.cause,
	})
}

// rxLoop is the per-QP receive process; the capacity-1 receive processor is
// shared across all QPs of the HCA.
func (q *QP) rxLoop(p *sim.Proc) {
	h := q.hca
	for {
		pk := q.rxQ.Get(p)
		switch pk.kind {
		case pktAck:
			h.cAcksRx.Inc()
			t0 := h.eng.Now()
			h.rxEngine.Use(p, h.cfg.AckTime)
			ackRef := trace.RefNone
			if tr := h.eng.Trc(); tr.Enabled() {
				ackRef = tr.CompleteR(h.name, "rx-ack", int64(t0), int64(h.eng.Now()),
					trace.Cause(pk.cause), trace.I64("qpn", int64(q.qpn)))
			}
			m := pk.ackFor
			if m.wr.Op == verbs.OpWrite || m.wr.Op == verbs.OpSend {
				// The ACK returns to the QP that sent the message.
				orig := h.qps[m.qpn]
				orig.scq.Push(verbs.Completion{WRID: m.wr.ID, Op: m.wr.Op, Len: m.wr.Len, At: h.eng.Now(), Cause: ackRef})
			}
		case pktReadReq:
			h.cReadReqs.Inc()
			t0 := h.eng.Now()
			h.rxEngine.Use(p, h.cfg.RxPktTime)
			reqRef := trace.RefNone
			if tr := h.eng.Trc(); tr.Enabled() {
				reqRef = tr.CompleteR(h.name, "rx-pkt", int64(t0), int64(h.eng.Now()),
					trace.Cause(pk.cause), trace.I64("qpn", int64(q.qpn)))
			}
			rd := pk.rd
			region, ok := h.reg.Lookup(rd.srcKey)
			if !ok {
				panic(fmt.Sprintf("ib %s: read request for unknown rkey %d", h.name, rd.srcKey))
			}
			h.eng.Go(fmt.Sprintf("%s/qp%d/read-resp", h.name, q.qpn), func(rp *sim.Proc) {
				q.stream(rp, verbs.OpWrite, region, rd.srcOff, rd.n, rd.sinkKey, rd.sinkOff, nil, rd.msg, true, reqRef)
			})
		case pktData:
			h.cPktsRx.Inc()
			q.handleData(p, pk)
		}
	}
}

// handleData performs DDP-equivalent placement for an arriving data packet.
func (q *QP) handleData(p *sim.Proc, pk *packet) {
	h := q.hca
	t0 := h.eng.Now()
	h.rxEngine.Acquire(p, 1)
	hold := h.cfg.RxPktTime
	if pk.first && h.touchCtx(q.qpn) {
		hold += h.cfg.CtxMissTime
	}
	p.Sleep(hold)
	h.rxEngine.Release(1)
	rxRef := trace.RefNone
	if tr := h.eng.Trc(); tr.Enabled() {
		rxRef = tr.CompleteR(h.name, "rx-pkt", int64(t0), int64(h.eng.Now()),
			trace.Cause(pk.cause), trace.I64("qpn", int64(q.qpn)), trace.I64("bytes", int64(pk.n)))
	}

	switch {
	case pk.op == verbs.OpWrite:
		region, ok := h.reg.Lookup(pk.stag)
		if !ok {
			panic(fmt.Sprintf("ib %s: RDMA write to unknown rkey %d", h.name, pk.stag))
		}
		t := h.pcie.WriteFrom(h.eng.Now(), pk.n)
		pkc := pk
		h.eng.At(t, func() {
			copy(region.Buf.Slice(region.Off+pkc.offset, pkc.n), pkc.payload)
			placed := h.eng.Trc().InstantR(h.name, "placed",
				trace.Cause(rxRef), trace.I64("bytes", int64(pkc.n)))
			q.places.Put(verbs.Placement{Key: pkc.stag, Off: pkc.offset, Len: pkc.n, At: h.eng.Now(), Cause: placed})
			if pkc.last {
				if pkc.rdMsg != nil {
					q.scq.Push(verbs.Completion{WRID: pkc.rdMsg.wr.ID, Op: verbs.OpRead, Len: pkc.rdMsg.wr.Len, At: h.eng.Now(), Cause: placed})
				} else if pkc.msg != nil {
					q.ack(pkc.msg, placed)
				}
			}
		})
	case pk.op == verbs.OpSend:
		if pk.first {
			q.cur = &inbound{}
			q.curWR = nil
			if len(q.recvQ) > 0 {
				wr := q.recvQ[0]
				q.recvQ = q.recvQ[1:]
				q.curWR = &wr
			}
		}
		if q.cur == nil {
			panic(fmt.Sprintf("ib %s: send continuation with no assembly", h.name))
		}
		q.cur.got += pk.n
		q.cur.cause = rxRef
		if q.curWR != nil {
			if pk.offset+pk.n > q.curWR.Local.Len {
				panic(fmt.Sprintf("ib %s: send overruns recv buffer", h.name))
			}
			t := h.pcie.WriteFrom(h.eng.Now(), pk.n)
			wr, cur, pkc := q.curWR, q.cur, pk
			h.eng.At(t, func() {
				copy(wr.Local.Slice(wr.LocalOff+pkc.offset, pkc.n), pkc.payload)
				if pkc.last {
					placed := h.eng.Trc().InstantR(h.name, "placed",
						trace.Cause(rxRef), trace.I64("bytes", int64(cur.got)))
					q.rcq.Push(verbs.Completion{WRID: wr.ID, Op: verbs.OpRecv, Len: cur.got, At: h.eng.Now(), Cause: placed})
					q.ack(pkc.msg, placed)
				}
			})
		} else {
			for len(q.cur.buf) < pk.offset {
				q.cur.buf = append(q.cur.buf, 0)
			}
			q.cur.buf = append(q.cur.buf[:pk.offset], pk.payload...)
			if pk.last {
				q.ack(pk.msg, rxRef)
			}
		}
		if pk.last {
			q.cur.total = q.cur.got
			if q.curWR == nil {
				q.early = append(q.early, q.cur)
			}
			q.cur = nil
			q.curWR = nil
		}
	}
}

// ack emits a transport ACK for a fully-arrived message, caused by the event
// that finished the message (placement or final rx pass).
func (q *QP) ack(msg *txMsg, cause trace.Ref) {
	q.emit(&packet{dstQPN: q.peer.qpn, kind: pktAck, n: 0, ackFor: msg, cause: cause})
}

// completeEarly flushes a buffered early Send into a just-posted receive.
func (q *QP) completeEarly(m *inbound, wr verbs.WR) {
	h := q.hca
	if m.total > wr.Local.Len {
		panic(fmt.Sprintf("ib %s: early send overruns recv buffer", h.name))
	}
	t := h.pcie.WriteFrom(h.eng.Now(), m.total)
	h.eng.At(t, func() {
		copy(wr.Local.Slice(wr.LocalOff, m.total), m.buf[:m.total])
		placed := h.eng.Trc().InstantR(h.name, "placed",
			trace.Cause(m.cause), trace.I64("bytes", int64(m.total)))
		q.rcq.Push(verbs.Completion{WRID: wr.ID, Op: verbs.OpRecv, Len: m.total, At: h.eng.Now(), Cause: placed})
	})
}
