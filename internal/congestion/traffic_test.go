package congestion

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// nullEndpoint satisfies fabric.Endpoint; background frames terminate at the
// fabric, so nothing should ever land here.
type nullEndpoint struct{ got int }

func (e *nullEndpoint) Deliver(f *fabric.Frame) { e.got++ }

// trafficNet builds an 8-port single-switch network at 1000 B/s.
func trafficNet(eng *sim.Engine, ports int) (*fabric.Network, []*nullEndpoint) {
	n := fabric.New(eng, fabric.Config{Name: "traffic-test", LinkRate: sim.Rate(1000)})
	eps := make([]*nullEndpoint, ports)
	for i := range eps {
		eps[i] = &nullEndpoint{}
		n.Attach(eps[i])
	}
	return n, eps
}

// runTraffic starts generators with the given config, lets them run until
// stopAt, stops every port, drains, and returns the Traffic plus a signature
// string that pins the whole run: frames offered, frames delivered, ECN
// marks, and the final virtual time (when the last in-flight event settled).
func runTraffic(t *testing.T, cfg TrafficConfig, stopAt sim.Time) (*Traffic, *fabric.Network, string) {
	t.Helper()
	eng := sim.NewEngine()
	n, eps := trafficNet(eng, 8)
	n.SetCongestion(fabric.CongestionConfig{ECNMarkBytes: 500})
	tr := Start(n, cfg)
	eng.Schedule(stopAt, func() {
		for p := 0; p < n.Ports(); p++ {
			tr.Stop(fabric.NodeID(p))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ep := range eps {
		if ep.got != 0 {
			t.Fatalf("endpoint %d received %d background frames; cross-traffic must terminate at the fabric", i, ep.got)
		}
	}
	sig := fmt.Sprintf("sent=%d bg=%d marks=%d end=%v",
		tr.FramesSent(), n.BackgroundDelivered(), n.ECNMarked(), eng.Now())
	return tr, n, sig
}

// TestTrafficDeterministicPerSeed: the same seed reproduces the exact same
// offered sequence, delivery count and end time; a different seed does not.
// This is the property the byte-identity CI check leans on.
func TestTrafficDeterministicPerSeed(t *testing.T) {
	cfg := TrafficConfig{Shape: Incast, Load: 0.5, FrameBytes: 100, Seed: 42, Epoch: 300 * sim.Millisecond}
	_, _, a := runTraffic(t, cfg, 2*sim.Second)
	tr, _, b := runTraffic(t, cfg, 2*sim.Second)
	if a != b {
		t.Errorf("same seed diverged:\n  %s\n  %s", a, b)
	}
	if tr.FramesSent() == 0 {
		t.Fatal("generators sent nothing")
	}
	cfg.Seed = 43
	_, _, c := runTraffic(t, cfg, 2*sim.Second)
	if a == c {
		t.Errorf("different seeds produced identical runs: %s", a)
	}
}

// TestHotspotShape: every port storms the fixed victim, and the victim
// itself stays silent — so after a run, exactly the victim's uplink carries
// zero frames.
func TestHotspotShape(t *testing.T) {
	cfg := TrafficConfig{Shape: Hotspot, Load: 0.5, FrameBytes: 100, Seed: 7}
	tr, n, _ := runTraffic(t, cfg, 2*sim.Second)
	for p := 0; p < n.Ports(); p++ {
		frames, _ := n.Port(fabric.NodeID(p)).UpLinkStats()
		if p == tr.hot {
			if frames != 0 {
				t.Errorf("victim port %d sent %d frames, want 0", p, frames)
			}
		} else if frames == 0 {
			t.Errorf("aggressor port %d sent nothing", p)
		}
	}
}

// TestPermutationShape: the rotation pairs every port with a distinct
// partner, so every uplink carries traffic.
func TestPermutationShape(t *testing.T) {
	cfg := TrafficConfig{Shape: Permutation, Load: 0.5, FrameBytes: 100, Seed: 7}
	tr, n, _ := runTraffic(t, cfg, 2*sim.Second)
	if tr.shift <= 0 || tr.shift >= n.Ports() {
		t.Fatalf("rotation shift %d outside (0, %d)", tr.shift, n.Ports())
	}
	for p := 0; p < n.Ports(); p++ {
		if frames, _ := n.Port(fabric.NodeID(p)).UpLinkStats(); frames == 0 {
			t.Errorf("port %d sent nothing under permutation", p)
		}
	}
}

// TestOutcastShape: only the epoch's speaker transmits, one frame to every
// other port per tick — so the offered total is a multiple of ports-1.
func TestOutcastShape(t *testing.T) {
	cfg := TrafficConfig{Shape: Outcast, Load: 0.3, FrameBytes: 100, Seed: 7, Epoch: 300 * sim.Millisecond}
	tr, n, _ := runTraffic(t, cfg, 2*sim.Second)
	if tr.FramesSent() == 0 {
		t.Fatal("no speaker ever fired")
	}
	if tr.FramesSent()%int64(n.Ports()-1) != 0 {
		t.Errorf("outcast sent %d frames, not a multiple of %d", tr.FramesSent(), n.Ports()-1)
	}
}

// TestVictimRotates: Incast's victim is a pure function of (seed, epoch) and
// actually rotates across epochs.
func TestVictimRotates(t *testing.T) {
	eng := sim.NewEngine()
	n, _ := trafficNet(eng, 8)
	tr := Start(n, TrafficConfig{Shape: Incast, Load: 0.5, Seed: 9, Epoch: 100 * sim.Microsecond})
	seen := map[int]bool{}
	for e := 0; e < 32; e++ {
		now := sim.Time(e) * 100 * sim.Microsecond
		v := tr.victimAt(now)
		if v != tr.victimAt(now + 99*sim.Microsecond) {
			t.Fatalf("victim changed within epoch %d", e)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("victim never rotated across 32 epochs: %v", seen)
	}
	eng.Schedule(0, func() {
		for p := 0; p < n.Ports(); p++ {
			tr.Stop(fabric.NodeID(p))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTrafficConfigValidation pins Start's contract on bad configs.
func TestTrafficConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg TrafficConfig, ports int) {
		t.Helper()
		eng := sim.NewEngine()
		n, _ := trafficNet(eng, ports)
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		Start(n, cfg)
	}
	mustPanic("zero load", TrafficConfig{Shape: Hotspot}, 4)
	mustPanic("overload", TrafficConfig{Shape: Hotspot, Load: 1.5}, 4)
	mustPanic("negative frame", TrafficConfig{Shape: Hotspot, Load: 0.5, FrameBytes: -1}, 4)
	mustPanic("negative epoch", TrafficConfig{Shape: Incast, Load: 0.5, Epoch: -sim.Second}, 4)
	mustPanic("one port", TrafficConfig{Shape: Hotspot, Load: 0.5}, 1)
}
