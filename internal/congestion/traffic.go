package congestion

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Shape selects a background-traffic pattern. All shapes are classic
// multi-tenant interference patterns from the congestion-characterization
// literature (see PAPERS.md): what differs is *where* the queues build.
type Shape int

const (
	// Permutation: every port streams to one fixed pseudo-random partner
	// (a rotation derived from the seed). Uniform pressure; on an
	// oversubscribed topology the queues build on the trunks.
	Permutation Shape = iota

	// Hotspot: every port streams to one fixed victim port. The victim's
	// switch->endpoint line saturates; everyone sharing it suffers.
	Hotspot

	// Incast: every port storms the current victim, and the victim rotates
	// every Epoch — bursty many-to-one pile-ups that sweep the fabric.
	Incast

	// Outcast: one speaker (rotating every Epoch) bursts one frame to
	// every other port per tick, overloading its own uplink and spraying
	// all spines at once.
	Outcast
)

// String names the shape for flags, figure series and error messages.
func (s Shape) String() string {
	switch s {
	case Permutation:
		return "permutation"
	case Hotspot:
		return "hotspot"
	case Incast:
		return "incast"
	case Outcast:
		return "outcast"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// ParseShape parses a shape name as produced by String.
func ParseShape(s string) (Shape, error) {
	switch s {
	case "permutation":
		return Permutation, nil
	case "hotspot":
		return Hotspot, nil
	case "incast":
		return Incast, nil
	case "outcast":
		return Outcast, nil
	}
	return 0, fmt.Errorf("unknown traffic shape %q (permutation, hotspot, incast, outcast)", s)
}

// TrafficConfig parameterizes a background-traffic run.
type TrafficConfig struct {
	Shape Shape

	// Load is the per-source offered load as a fraction of line rate in
	// (0, 1]. Storm shapes concentrate it: a hotspot victim's egress line
	// sees (ports-1) * Load.
	Load float64

	// FrameBytes is the payload size of each background frame (default
	// 1024, a mid-size frame that builds queues without dominating them).
	FrameBytes int

	// Seed drives every random decision. Same seed, same topology → the
	// exact same offered frame sequence, at any -j and -shards.
	Seed uint64

	// Epoch is the victim/speaker rotation period for Incast and Outcast
	// (default 100 us). Ignored by the static shapes.
	Epoch sim.Time
}

// flowBase keeps background flow ids clear of real transport connection
// ids, so ECMP spreads cross-traffic independently of the workload's flows.
const flowBase = 1 << 20

// Traffic is a set of per-port background generators attached to one
// fabric. Each port runs an independent self-rescheduling tick chain on the
// engine that owns the port (its shard in staged mode), drawing from a
// per-port RNG stream — no cross-shard events, no shared state, which is
// what keeps sharded runs byte-identical.
type Traffic struct {
	net *fabric.Network
	cfg TrafficConfig

	shift   int // permutation rotation, fixed per run
	hot     int // hotspot victim, fixed per run
	sources []*source
}

// source is one port's generator.
type source struct {
	t       *Traffic
	port    *fabric.Port
	eng     *sim.Engine
	rng     *sim.RNG
	gap     sim.Time // mean inter-tick time at the configured load
	stopped bool
	sent    int64
	tickFn  func(any)
}

// splitmix is the SplitMix64 finalizer: a cheap, well-mixed hash for
// deriving independent decisions (victim rotations, per-port seeds) from
// the run seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Start attaches background generators to every port of the network and
// schedules their first ticks (phase-offset per port so sources do not beat
// in lockstep). Call it during setup, after every endpoint has attached —
// and after EnableStaged in sharded worlds, so ticks land on the owning
// shard's engine.
//
// The chains run until stopped: every port's generator must be stopped (see
// Stop) or the simulation never goes idle. The convention in the benchmarks
// is that rank r stops port r's generator when its collective completes —
// rank and generator share a shard by construction, and per-port stop times
// make the whole event history independent of the shard count.
func Start(n *fabric.Network, cfg TrafficConfig) *Traffic {
	if cfg.Load <= 0 || cfg.Load > 1 {
		panic(fmt.Sprintf("congestion: load %v outside (0, 1]", cfg.Load))
	}
	if cfg.FrameBytes == 0 {
		cfg.FrameBytes = 1024
	}
	if cfg.FrameBytes < 0 {
		panic(fmt.Sprintf("congestion: frame bytes %d", cfg.FrameBytes))
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 100 * sim.Microsecond
	}
	if cfg.Epoch < 0 {
		panic(fmt.Sprintf("congestion: epoch %v", cfg.Epoch))
	}
	ports := n.Ports()
	if ports < 2 {
		panic(fmt.Sprintf("congestion: %d ports; background traffic needs at least 2", ports))
	}
	t := &Traffic{
		net:     n,
		cfg:     cfg,
		shift:   1 + int(splitmix(cfg.Seed)%uint64(ports-1)),
		hot:     int(splitmix(cfg.Seed^0xb0a751c0) % uint64(ports)),
		sources: make([]*source, ports),
	}
	base := sim.Time(float64(n.TxTime(cfg.FrameBytes)) / cfg.Load)
	for p := 0; p < ports; p++ {
		s := &source{
			t:    t,
			port: n.Port(fabric.NodeID(p)),
			eng:  n.PortEngine(fabric.NodeID(p)),
			rng:  sim.NewRNG(splitmix(cfg.Seed + uint64(p)*0x9e3779b97f4a7c15)),
			gap:  base,
		}
		s.tickFn = t.tick
		t.sources[p] = s
		// Random phase in [0, gap): sources start spread across one period.
		s.eng.AtArg(s.eng.Now()+sim.Time(s.rng.Float64()*float64(base)), s.tickFn, s)
	}
	return t
}

// Config returns the generator configuration.
func (t *Traffic) Config() TrafficConfig { return t.cfg }

// Stop halts the given port's generator: its pending tick fires, sees the
// flag and does not reschedule. Must be called from the engine that owns
// the port (in the benchmarks: by the rank running on that port). Stopping
// per port — not per shard — is what keeps stop times, and therefore the
// entire background frame sequence, invariant across shard counts.
func (t *Traffic) Stop(p fabric.NodeID) { t.sources[p].stopped = true }

// FramesSent returns the total background frames offered to the fabric.
// Read it only after the run is quiescent (counters are per-shard state).
func (t *Traffic) FramesSent() int64 {
	var total int64
	for _, s := range t.sources {
		total += s.sent
	}
	return total
}

// victimAt returns the rotating victim/speaker for the epoch containing
// now — a pure function of (seed, now), identical on every shard.
func (t *Traffic) victimAt(now sim.Time) int {
	epoch := uint64(now / t.cfg.Epoch)
	return int(splitmix(t.cfg.Seed^(epoch+1)*0x632be59b) % uint64(len(t.sources)))
}

// tick runs one generator beat: choose targets by shape, send, reschedule.
// It is the AtArg callback bound once per source.
func (t *Traffic) tick(v any) {
	s := v.(*source)
	if s.stopped {
		return
	}
	now := s.eng.Now()
	p := int(s.port.ID())
	n := len(t.sources)
	switch t.cfg.Shape {
	case Permutation:
		t.send(s, (p+t.shift)%n)
	case Hotspot:
		if p != t.hot {
			t.send(s, t.hot)
		}
	case Incast:
		if victim := t.victimAt(now); p != victim {
			t.send(s, victim)
		}
	case Outcast:
		if p == t.victimAt(now) {
			for d := 0; d < n; d++ {
				if d != p {
					t.send(s, d)
				}
			}
		}
	default:
		panic(fmt.Sprintf("congestion: shape %v", t.cfg.Shape))
	}
	// Jittered reschedule: uniform in [0.5, 1.5) of the base gap, mean
	// exactly the configured load. Consumed every tick — including idle
	// ones — so each port's RNG stream depends only on its own history.
	g := sim.Time((0.5 + s.rng.Float64()) * float64(s.gap))
	s.eng.AtArg(now+g, s.tickFn, s)
}

// send offers one background frame to the fabric.
func (t *Traffic) send(s *source, dst int) {
	f := &fabric.Frame{
		Src:        s.port.ID(),
		Dst:        fabric.NodeID(dst),
		Bytes:      t.cfg.FrameBytes,
		Flow:       flowBase + int(s.port.ID()),
		Background: true,
	}
	s.port.Send(f)
	s.sent++
}
