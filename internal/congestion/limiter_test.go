package congestion

import (
	"testing"

	"repro/internal/sim"
)

// testRateConfig: 1000 B/s line rate, halve on signal, floor at 100 B/s,
// recover 250 B/s per quiet second — every pin below is integer arithmetic.
func testRateConfig() RateConfig {
	return RateConfig{
		LineRate:     sim.Rate(1000),
		MinRate:      sim.Rate(100),
		CutFactor:    0.5,
		RecoverEvery: sim.Second,
		RecoverFrac:  0.25,
	}
}

// TestLimiterUnarmedIsInert: before the first congestion signal every method
// is a no-op — this is the zero-cost-when-off contract that keeps clean runs
// byte-identical to the pre-limiter model.
func TestLimiterUnarmedIsInert(t *testing.T) {
	r := NewRateLimiter(testRateConfig())
	if r.Armed() {
		t.Fatal("fresh limiter armed")
	}
	r.Sent(0, 500)
	if got := r.Gate(100 * sim.Millisecond); got != 0 {
		t.Errorf("unarmed Gate = %v, want 0", got)
	}
	if got := r.CurrentRate(sim.Second); got != sim.Rate(1000) {
		t.Errorf("unarmed CurrentRate = %v, want line rate", got)
	}
	if r.Cuts() != 0 || r.Stalled() != 0 {
		t.Errorf("unarmed counters moved: cuts=%d stalled=%v", r.Cuts(), r.Stalled())
	}
}

// TestLimiterCutsAndFloor pins the multiplicative-decrease ladder:
// 1000 -> 500 -> 250 -> 125 -> floor at 100, where it stays.
func TestLimiterCutsAndFloor(t *testing.T) {
	r := NewRateLimiter(testRateConfig())
	want := []sim.Rate{500, 250, 125, 100, 100}
	for i, w := range want {
		r.OnCongestion(0)
		if got := r.CurrentRate(0); got != w {
			t.Errorf("after cut %d: rate = %v, want %v", i+1, got, w)
		}
	}
	if !r.Armed() || r.Cuts() != int64(len(want)) {
		t.Errorf("armed=%v cuts=%d, want armed/%d", r.Armed(), r.Cuts(), len(want))
	}
}

// TestLimiterLazyRecovery pins the additive-increase schedule and the disarm
// point. Rate sits at the 100 B/s floor after 4 cuts at t=0; recovery adds
// 250 B/s per elapsed RecoverEvery, evaluated lazily at query time.
func TestLimiterLazyRecovery(t *testing.T) {
	r := NewRateLimiter(testRateConfig())
	for i := 0; i < 4; i++ {
		r.OnCongestion(0)
	}
	if got := r.CurrentRate(999 * sim.Millisecond); got != sim.Rate(100) {
		t.Errorf("before first step: rate = %v, want 100", got)
	}
	if got := r.CurrentRate(sim.Second); got != sim.Rate(350) {
		t.Errorf("after one step: rate = %v, want 350", got)
	}
	// From here (lastRecover = 1s) three more steps land at 350+750 = 1100,
	// over line rate: the limiter disarms and reports full rate again.
	if got := r.CurrentRate(4 * sim.Second); got != sim.Rate(1000) {
		t.Errorf("after recovery: rate = %v, want line rate", got)
	}
	if r.Armed() {
		t.Error("limiter still armed after recovering past line rate")
	}
}

// TestLimiterGatePacing pins the Gate/Sent pacing arithmetic: a 500-byte
// transmission at the halved 500 B/s pace books one second of wire, and Gate
// hands the sender exactly the remaining wait — never a negative delay.
func TestLimiterGatePacing(t *testing.T) {
	r := NewRateLimiter(testRateConfig())
	r.OnCongestion(0) // rate 500 B/s
	if got := r.Gate(0); got != 0 {
		t.Fatalf("pacing window not open at arm time: Gate = %v", got)
	}
	r.Sent(0, 500) // books [0, 1s) at 500 B/s
	if got := r.Gate(0); got != sim.Second {
		t.Errorf("Gate at 0 = %v, want 1s", got)
	}
	if got := r.Gate(600 * sim.Millisecond); got != 400*sim.Millisecond {
		t.Errorf("Gate at 600ms = %v, want 400ms", got)
	}
	if got := r.Gate(sim.Second); got != 0 {
		t.Errorf("Gate at window open = %v, want 0", got)
	}
	if got := r.Stalled(); got != 1400*sim.Millisecond {
		t.Errorf("Stalled = %v, want 1.4s", got)
	}
}

// TestLimiterArmAdvancesPacingClock: arming at a late virtual time must not
// leave the pacing window in the past (that would let the first paced send
// burst through).
func TestLimiterArmAdvancesPacingClock(t *testing.T) {
	r := NewRateLimiter(testRateConfig())
	r.OnCongestion(5 * sim.Second)
	r.Sent(5*sim.Second, 500)
	if got := r.Gate(5 * sim.Second); got != sim.Second {
		t.Errorf("Gate after late arm = %v, want 1s", got)
	}
}

// TestRateConfigValidation pins the constructor contract.
func TestRateConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RateConfig)
	}{
		{"zero line rate", func(c *RateConfig) { c.LineRate = 0 }},
		{"zero min rate", func(c *RateConfig) { c.MinRate = 0 }},
		{"min above line", func(c *RateConfig) { c.MinRate = c.LineRate + 1 }},
		{"cut factor one", func(c *RateConfig) { c.CutFactor = 1 }},
		{"cut factor zero", func(c *RateConfig) { c.CutFactor = 0 }},
		{"no recover period", func(c *RateConfig) { c.RecoverEvery = 0 }},
		{"no recover frac", func(c *RateConfig) { c.RecoverFrac = 0 }},
	}
	for _, tc := range cases {
		name, mutate := tc.name, tc.mutate
		cfg := testRateConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			NewRateLimiter(cfg)
		}()
	}
}
