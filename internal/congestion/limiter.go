// Package congestion supplies the feedback side of the fabric's bounded
// queues (fabric.CongestionConfig): a DCQCN-style sender rate limiter that
// reacts to ECN echoes and losses, and deterministic background-traffic
// generators that create the contention for it to react to.
//
// Everything here is built for the conservative parallel runtime's rules:
// rate changes only ever *delay* a sender's next transmission (they never
// schedule anything earlier than it would otherwise happen, so pdes
// lookahead bounds are untouched), and every generator's decisions are pure
// functions of (seed, port, virtual time) so runs are byte-identical at any
// worker count and shard count.
package congestion

import (
	"fmt"

	"repro/internal/sim"
)

// RateConfig parameterizes a RateLimiter. The zero value is invalid; use
// DefaultRateConfig(lineRate) and override fields as needed.
type RateConfig struct {
	// LineRate is the full (uncongested) sending rate. The limiter is a
	// no-op while its current rate equals LineRate.
	LineRate sim.Rate

	// MinRate floors the multiplicative decrease so a lossy run cannot
	// throttle a sender to zero and deadlock the workload.
	MinRate sim.Rate

	// CutFactor in (0, 1) multiplies the current rate on every congestion
	// signal (DCQCN's alpha-driven decrease collapsed to one knob).
	CutFactor float64

	// RecoverEvery and RecoverFrac are the additive-increase schedule:
	// every RecoverEvery of signal-free virtual time the rate gains
	// RecoverFrac * LineRate, until it reaches LineRate and the limiter
	// disarms again.
	RecoverEvery sim.Time
	RecoverFrac  float64
}

// DefaultRateConfig returns the DCQCN-flavored defaults used by the
// congestion experiments: halve on signal, recover 5% of line rate every
// 50 us of quiet, never drop below 1% of line rate.
func DefaultRateConfig(lineRate sim.Rate) RateConfig {
	return RateConfig{
		LineRate:     lineRate,
		MinRate:      lineRate / 100,
		CutFactor:    0.5,
		RecoverEvery: 50 * sim.Microsecond,
		RecoverFrac:  0.05,
	}
}

func (c RateConfig) validate() {
	if c.LineRate <= 0 {
		panic(fmt.Sprintf("congestion: line rate %v", c.LineRate))
	}
	if c.MinRate <= 0 || c.MinRate > c.LineRate {
		panic(fmt.Sprintf("congestion: min rate %v outside (0, %v]", c.MinRate, c.LineRate))
	}
	if c.CutFactor <= 0 || c.CutFactor >= 1 {
		panic(fmt.Sprintf("congestion: cut factor %v outside (0, 1)", c.CutFactor))
	}
	if c.RecoverEvery <= 0 || c.RecoverFrac <= 0 {
		panic(fmt.Sprintf("congestion: recovery schedule %v/%v", c.RecoverEvery, c.RecoverFrac))
	}
}

// RateLimiter is a DCQCN-style sender-side rate throttle. It is completely
// inert — every method is a cheap no-op preserving byte-identical timing —
// until the first OnCongestion call arms it; from then on the sender asks
// Gate how long to hold the next transmission and books each transmission
// with Sent. Recovery is computed lazily from elapsed virtual time, so the
// limiter schedules no events of its own: all throttling happens as delays
// the sender itself applies, which is what keeps pdes lookahead intact.
//
// The limiter is single-shard state: it belongs to one NIC and must only be
// touched from that NIC's engine.
type RateLimiter struct {
	cfg RateConfig

	armed       bool
	rate        sim.Rate // current sending rate; meaningful only while armed
	nextSend    sim.Time // earliest start of the next paced transmission
	lastRecover sim.Time // last time additive increase was applied

	cuts    int64
	stalled sim.Time // cumulative Gate delay handed to the sender
}

// NewRateLimiter returns an unarmed limiter.
func NewRateLimiter(cfg RateConfig) *RateLimiter {
	cfg.validate()
	return &RateLimiter{cfg: cfg}
}

// Armed reports whether the limiter is currently pacing (a congestion
// signal arrived and recovery has not yet reached line rate).
func (r *RateLimiter) Armed() bool { return r.armed }

// Cuts returns the number of rate cuts applied (one per accepted
// congestion signal).
func (r *RateLimiter) Cuts() int64 { return r.cuts }

// Stalled returns the cumulative delay Gate has imposed on the sender.
func (r *RateLimiter) Stalled() sim.Time { return r.stalled }

// CurrentRate returns the pacing rate after lazy recovery up to now
// (LineRate when unarmed).
func (r *RateLimiter) CurrentRate(now sim.Time) sim.Rate {
	r.recover(now)
	if !r.armed {
		return r.cfg.LineRate
	}
	return r.rate
}

// OnCongestion registers one congestion signal (an ECN echo or a detected
// loss) at virtual time now: multiplicative decrease, flooring at MinRate.
// The caller is responsible for signal hygiene (e.g. one cut per RTT);
// tcpsim's Conn.ECNCut already provides it for the iWARP path.
func (r *RateLimiter) OnCongestion(now sim.Time) {
	if !r.armed {
		r.armed = true
		r.rate = r.cfg.LineRate
		if r.nextSend < now {
			r.nextSend = now
		}
	} else {
		r.recover(now)
	}
	r.rate = sim.Rate(float64(r.rate) * r.cfg.CutFactor)
	if r.rate < r.cfg.MinRate {
		r.rate = r.cfg.MinRate
	}
	r.cuts++
	r.lastRecover = now
}

// recover applies the additive-increase schedule for the signal-free time
// since lastRecover, disarming the limiter once it is back at line rate.
func (r *RateLimiter) recover(now sim.Time) {
	if !r.armed || now <= r.lastRecover {
		return
	}
	steps := (now - r.lastRecover) / r.cfg.RecoverEvery
	if steps <= 0 {
		return
	}
	r.lastRecover += steps * r.cfg.RecoverEvery
	r.rate += sim.Rate(float64(r.cfg.LineRate) * r.cfg.RecoverFrac * float64(steps))
	if r.rate >= r.cfg.LineRate {
		// Fully recovered: disarm, restoring the exact unpaced arithmetic.
		r.armed = false
		r.rate = 0
		r.nextSend = 0
		r.lastRecover = 0
	}
}

// Gate returns how long the sender must hold its next transmission, from
// now (zero when unarmed or the pacing window is open). The sender sleeps
// or schedules a wake after the returned delay and asks again.
func (r *RateLimiter) Gate(now sim.Time) sim.Time {
	if !r.armed {
		return 0
	}
	r.recover(now)
	if !r.armed || r.nextSend <= now {
		return 0
	}
	d := r.nextSend - now
	r.stalled += d
	return d
}

// Sent books one transmission of the given size starting at now: the next
// transmission may not start before this one would finish serializing at
// the current (reduced) pace. No-op when unarmed — the wire's own
// serialization already paces an uncongested sender.
func (r *RateLimiter) Sent(now sim.Time, bytes int) {
	if !r.armed {
		return
	}
	r.recover(now)
	if !r.armed {
		return
	}
	start := now
	if r.nextSend > start {
		start = r.nextSend
	}
	r.nextSend = start + r.rate.TxTime(bytes)
}
