# Tier-1 verification for the repo (see ROADMAP.md). `make verify` is what
# CI and pre-merge checks should run.

GO ?= go

.PHONY: all build test vet lint race traceguard verify figures calibrate clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# simlint mechanically enforces the determinism contract (virtual time only,
# no map-order dependence, no ad-hoc concurrency, unit-carrying durations,
# constant trace/metric names). See docs/static-analysis.md.
lint:
	$(GO) run ./cmd/simlint ./...

# The simulation engine, the metrics registry, and the MPI layer are
# single-threaded by design; the race detector proves the tests don't
# violate that.
race:
	$(GO) test -race ./internal/sim/... ./internal/metrics/... ./internal/mpi/...

# Guard the zero-cost-when-disabled contract of the tracer: recording
# against a nil tracer must not allocate (see internal/trace).
traceguard:
	$(GO) test -run TestTraceOverhead ./internal/trace/...

verify: build test vet lint race traceguard calibrate

figures:
	$(GO) run ./cmd/figures

# The 20 paper anchors double as the regression net for every model change:
# calibrate exits non-zero when any headline number drifts outside its
# tolerance, so it is part of the tier-1 gate.
calibrate:
	$(GO) run ./cmd/calibrate

clean:
	$(GO) clean ./...
