# Tier-1 verification for the repo (see ROADMAP.md). `make verify` is what
# CI and pre-merge checks should run.

GO ?= go

.PHONY: all build test vet lint lintselftest race traceguard verify figures calibrate bench benchsmoke jobscheck topocheck pdescheck congestioncheck breakdowncheck tracetoolcheck simdcheck clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# simlint mechanically enforces the determinism contract (virtual time only,
# no map-order dependence, no ad-hoc concurrency, unit-carrying durations,
# constant trace/metric names) plus the interprocedural shard-safety and
# zero-alloc contracts (sharedstate, noalloc, seedrand) and reports stale
# allow directives. See docs/static-analysis.md.
lint:
	$(GO) run ./cmd/simlint ./...

# lintselftest runs the analyzer toolchain's own tests — the testdata-driven
# analyzer suites, the runner's stale-directive test and the allow-directive
# budget — under the race detector (analyzers must be safe to parallelize
# per package later; -race keeps them honest now).
lintselftest:
	$(GO) test -race ./internal/lint/...

# The simulation engine, the metrics registry, and the MPI layer are
# single-threaded by design; the race detector proves the tests don't
# violate that. internal/parallel is the opposite — deliberately
# concurrent — so its pool tests run under the race detector too.
race:
	$(GO) test -race ./internal/sim/... ./internal/metrics/... ./internal/mpi/... ./internal/parallel/... ./internal/bench/...

# Guard the zero-cost-when-disabled contract of the tracer: recording
# against a nil tracer must not allocate (see internal/trace).
traceguard:
	$(GO) test -run TestTraceOverhead ./internal/trace/...

verify: build test vet lint lintselftest race traceguard calibrate

figures:
	$(GO) run ./cmd/figures

# The 20 paper anchors double as the regression net for every model change:
# calibrate exits non-zero when any headline number drifts outside its
# tolerance, so it is part of the tier-1 gate.
calibrate:
	$(GO) run ./cmd/calibrate

# bench measures the engine hot paths and the end-to-end figure-suite wall
# time and refreshes BENCH_engine.json (see docs/performance.md). Slow: it
# runs the full figure sweep twice (-j 1 and -j N).
bench:
	$(GO) run ./cmd/enginebench -out BENCH_engine.json

# benchsmoke is the CI-sized version: one iteration of every engine
# microbenchmark, no figure sweeps — it proves the benchmarks still compile
# and run, not how fast they are.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/sim/

# jobscheck proves the parallel runner's determinism contract end to end:
# a thinned full-catalogue figure run at -j 1 and at -j 8 must emit
# byte-identical output.
jobscheck:
	$(GO) build -o /tmp/repro-figures ./cmd/figures
	/tmp/repro-figures -scale 4 -j 1 > /tmp/repro-figures-j1.txt
	/tmp/repro-figures -scale 4 -j 8 > /tmp/repro-figures-j8.txt
	cmp /tmp/repro-figures-j1.txt /tmp/repro-figures-j8.txt

# topocheck smoke-tests the multi-switch topology family: a thinned
# leaf-spine run must succeed and — because ECMP hashing, trunk queueing,
# and lazy QP wiring all feed the same virtual clock — stay byte-identical
# between a serial and a parallel run.
topocheck:
	$(GO) build -o /tmp/repro-figures ./cmd/figures
	/tmp/repro-figures -only topo -scale 2 -j 1 > /tmp/repro-topo-j1.txt
	/tmp/repro-figures -only topo -scale 2 -j 8 > /tmp/repro-topo-j8.txt
	cmp /tmp/repro-topo-j1.txt /tmp/repro-topo-j8.txt

# pdescheck gates the conservative parallel (sharded) runtime: the topo
# family run serially and with every world split across 8 shard engines
# must emit byte-identical tables, and the sharded binary is built with
# -race so the barrier protocol's happens-before claims are machine-checked
# on every CI run, not just argued in comments.
pdescheck:
	$(GO) build -race -o /tmp/repro-figures-race ./cmd/figures
	/tmp/repro-figures-race -only topo -scale 2 -j 1 -shards 1 > /tmp/repro-topo-s1.txt
	/tmp/repro-figures-race -only topo -scale 2 -j 1 -shards 8 > /tmp/repro-topo-s8.txt
	cmp /tmp/repro-topo-s1.txt /tmp/repro-topo-s8.txt

# congestioncheck gates the congestion-control family: bounded queues, ECN
# echoes, DCQCN pacing, VL credits, uplink throttling and the background
# aggressors all keep per-shard state, so the loaded figure grid run serially
# and with every world split across 8 shard engines must emit byte-identical
# tables — under -race, like pdescheck, so the merge paths are also
# machine-checked for data races.
congestioncheck:
	$(GO) build -race -o /tmp/repro-figures-race ./cmd/figures
	/tmp/repro-figures-race -only congestion -scale 2 -j 1 -shards 1 > /tmp/repro-congestion-s1.txt
	/tmp/repro-figures-race -only congestion -scale 2 -j 1 -shards 8 > /tmp/repro-congestion-s8.txt
	cmp /tmp/repro-congestion-s1.txt /tmp/repro-congestion-s8.txt

# breakdowncheck covers the latency-attribution family: causal tracing and
# blame run inside every breakdown world, so a serial and a parallel run of
# the family must emit byte-identical tables.
breakdowncheck:
	$(GO) build -o /tmp/repro-figures ./cmd/figures
	/tmp/repro-figures -only breakdown -scale 2 -j 1 > /tmp/repro-breakdown-j1.txt
	/tmp/repro-figures -only breakdown -scale 2 -j 8 > /tmp/repro-breakdown-j8.txt
	cmp /tmp/repro-breakdown-j1.txt /tmp/repro-breakdown-j8.txt

# simdcheck exercises the simulation-as-a-service job server end to end over
# real loopback HTTP: boot the server against a throwaway cache, submit a
# small spec twice — the second with scrambled field order and whitespace —
# and require the repeat to be served from the cache byte-identically
# (store counters: exactly one miss, one hit), then cancel a queued job and
# prove the job ahead of it is unaffected. See docs/simd.md.
simdcheck:
	$(GO) build -o /tmp/repro-simd ./cmd/simd
	/tmp/repro-simd -check

# tracetoolcheck exercises the offline tracing pipeline end to end: capture
# JSONL traces from netbench, reconstruct the causal DAG, and run every
# tracetool subcommand. blame exits non-zero unless the attribution buckets
# tile the blame window exactly, so this smoke also asserts the bucket-sum
# invariant on real traces.
tracetoolcheck:
	$(GO) build -o /tmp/repro-netbench ./cmd/netbench
	$(GO) build -o /tmp/repro-tracetool ./cmd/tracetool
	/tmp/repro-netbench -net iwarp -test latency -size 1024 -tracejsonl /tmp/repro-iwarp.jsonl > /dev/null
	/tmp/repro-netbench -net ib -test latency -size 1024 -tracejsonl /tmp/repro-ib.jsonl > /dev/null
	/tmp/repro-tracetool crit /tmp/repro-iwarp.jsonl > /dev/null
	/tmp/repro-tracetool blame /tmp/repro-iwarp.jsonl
	/tmp/repro-tracetool blame /tmp/repro-ib.jsonl
	/tmp/repro-tracetool diff /tmp/repro-iwarp.jsonl /tmp/repro-ib.jsonl > /dev/null

clean:
	$(GO) clean ./...
