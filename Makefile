# Tier-1 verification for the repo (see ROADMAP.md). `make verify` is what
# CI and pre-merge checks should run.

GO ?= go

.PHONY: all build test vet race traceguard verify figures calibrate clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The simulation engine and the metrics registry are single-threaded by
# design; the race detector proves the tests don't violate that.
race:
	$(GO) test -race ./internal/sim/... ./internal/metrics/...

# Guard the zero-cost-when-disabled contract of the tracer: recording
# against a nil tracer must not allocate (see internal/trace).
traceguard:
	$(GO) test -run TestTraceOverhead ./internal/trace/...

verify: build test vet race traceguard

figures:
	$(GO) run ./cmd/figures

calibrate:
	$(GO) run ./cmd/calibrate

clean:
	$(GO) clean ./...
