// Command tracetool analyzes causally-annotated JSONL traces (written by
// `netbench -tracejsonl` or trace.WriteJSONLFile): it reconstructs the event
// DAG, extracts the critical path of an operation, and attributes the
// operation's elapsed virtual time to architectural buckets.
//
// Usage:
//
//	tracetool crit  [-op REF] trace.jsonl            print the critical path
//	tracetool blame [-op REF] trace.jsonl            print the time-attribution table
//	tracetool diff  [-op REF] [-op2 REF] a.jsonl b.jsonl
//	                                                 compare two attributions
//
// The operation defaults to the last-completing causal node of the trace —
// in a benchmark run, the final MPI call. Pass -op to blame a specific node
// (refs are the causal.self values in the JSONL events).
//
// tracetool refuses traces whose ring buffer dropped events carrying causal
// edges: the DAG would have holes and the attribution would silently lie.
// Re-run the benchmark with a larger -tracecap instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/causal"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "crit":
		err = runCrit(args)
	case "blame":
		err = runBlame(args)
	case "diff":
		err = runDiff(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracetool crit  [-op REF] trace.jsonl
  tracetool blame [-op REF] trace.jsonl
  tracetool diff  [-op REF] [-op2 REF] a.jsonl b.jsonl`)
}

// load reads one JSONL trace and builds its DAG, resolving the op ref
// (0 = the trace's terminal causal node).
func load(path string, op int64) (*causal.DAG, trace.Ref, error) {
	events, drops, err := trace.ReadJSONLFile(path)
	if err != nil {
		return nil, trace.RefNone, err
	}
	d, err := causal.Build(events, drops)
	if err != nil {
		return nil, trace.RefNone, fmt.Errorf("%s: %w", path, err)
	}
	ref := trace.Ref(op)
	if ref == trace.RefNone {
		ref = d.Terminal()
		if ref == trace.RefNone {
			return nil, trace.RefNone, fmt.Errorf("%s: no causally-annotated events (was tracing enabled?)", path)
		}
	}
	return d, ref, nil
}

func runCrit(args []string) error {
	fs := flag.NewFlagSet("crit", flag.ExitOnError)
	op := fs.Int64("op", 0, "operation node ref (default: last-completing causal node)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file, got %d args", fs.NArg())
	}
	d, ref, err := load(fs.Arg(0), *op)
	if err != nil {
		return err
	}
	path, err := d.CriticalPath(ref)
	if err != nil {
		return err
	}
	fmt.Printf("critical path of node %d (%d nodes, %d in DAG):\n", ref, len(path), d.Len())
	fmt.Printf("%12s %12s %-7s %6s  %-24s %s\n", "start(us)", "dur(us)", "bucket", "ref", "track", "event")
	for _, n := range path {
		fmt.Printf("%12.3f %12.3f %-7s %6d  %-24s %s\n",
			us(n.Start()), us(n.End()-n.Start()), causal.Classify(n.Ev), n.Ref, n.Ev.Who, n.Ev.Name)
	}
	return nil
}

func runBlame(args []string) error {
	fs := flag.NewFlagSet("blame", flag.ExitOnError)
	op := fs.Int64("op", 0, "operation node ref (default: last-completing causal node)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file, got %d args", fs.NArg())
	}
	d, ref, err := load(fs.Arg(0), *op)
	if err != nil {
		return err
	}
	rep, err := d.Blame(ref)
	if err != nil {
		return err
	}
	printReport(fs.Arg(0), rep)
	return checkSum(rep)
}

// checkSum enforces the attribution invariant: the buckets tile the blame
// window exactly. Blame constructs reports that way; a mismatch means the
// report is corrupt and must not be trusted.
func checkSum(rep *causal.Report) error {
	var sum int64
	for _, v := range rep.Buckets {
		sum += v
	}
	if sum != rep.Total() {
		return fmt.Errorf("attribution buckets sum to %d ps but the blame window is %d ps", sum, rep.Total())
	}
	return nil
}

func printReport(path string, rep *causal.Report) {
	fmt.Printf("%s: %s/%s [%0.3f us .. %0.3f us], window %.3f us, path %d nodes\n",
		path, rep.Op.Ev.Who, rep.Op.Ev.Name, us(rep.Start), us(rep.End), us(rep.Total()), len(rep.Path))
	fmt.Printf("%-7s %12s %7s\n", "bucket", "time(us)", "share")
	for b := causal.Bucket(0); b < causal.NumBuckets; b++ {
		fmt.Printf("%-7s %12.3f %6.1f%%\n", b, us(rep.Buckets[b]), 100*float64(rep.Buckets[b])/float64(rep.Total()))
	}
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	op := fs.Int64("op", 0, "operation node ref in the first trace")
	op2 := fs.Int64("op2", 0, "operation node ref in the second trace (default: same rule as -op)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly two trace files, got %d args", fs.NArg())
	}
	da, refA, err := load(fs.Arg(0), *op)
	if err != nil {
		return err
	}
	db, refB, err := load(fs.Arg(1), *op2)
	if err != nil {
		return err
	}
	ra, err := da.Blame(refA)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	rb, err := db.Blame(refB)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(1), err)
	}
	printReport(fs.Arg(0), ra)
	if err := checkSum(ra); err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	fmt.Println()
	printReport(fs.Arg(1), rb)
	if err := checkSum(rb); err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(1), err)
	}
	fmt.Println()
	fmt.Printf("delta (%s - %s), window %+.3f us:\n", fs.Arg(1), fs.Arg(0), us(rb.Total()-ra.Total()))
	fmt.Printf("%-7s %12s %12s %12s\n", "bucket", "a(us)", "b(us)", "delta(us)")
	for b := causal.Bucket(0); b < causal.NumBuckets; b++ {
		fmt.Printf("%-7s %12.3f %12.3f %+12.3f\n", b, us(ra.Buckets[b]), us(rb.Buckets[b]), us(rb.Buckets[b]-ra.Buckets[b]))
	}
	return nil
}

// us converts picoseconds to microseconds for display.
func us(ps int64) float64 { return float64(ps) / 1e6 }
