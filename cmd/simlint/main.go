// Command simlint enforces the simulator's determinism, shard-safety and
// zero-alloc contracts with the analyzer suite under internal/lint (see
// docs/static-analysis.md).
//
// Direct mode (the usual way, what `make lint` runs):
//
//	simlint [-tests=false] [-vet] [packages]
//
// analyzes the named packages (default ./...) through internal/lint/runner
// — dependency-ordered so analyzer facts flow across packages — and exits
// 2 if any diagnostic is reported, stale //simlint:allow directives
// included. -vet additionally runs the standard `go vet` suite over the
// same patterns first.
//
// Vettool mode: when invoked with a single *.cfg argument, simlint speaks
// the cmd/go unitchecker protocol, so it can also run as
//
//	go vet -vettool=$(go env GOPATH)/bin/simlint ./...
//
// In that mode cmd/go supplies the export data and file lists but runs one
// process per package, so facts cannot flow: the fact-dependent analyzers
// are reduced (no noalloc, no cross-package sharedstate writes, no stale
// reporting). Direct mode is the gate; vettool mode is a convenience.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/runner"
)

func main() {
	// Tool-ID handshake used by cmd/go before dispatching unit checks.
	if len(os.Args) == 2 && (os.Args[1] == "-V=full" || os.Args[1] == "-V") {
		fmt.Printf("%s version simlint-2.0\n", os.Args[0])
		return
	}
	// cmd/go asks the tool which flags it accepts; the suite has none that
	// vet needs to forward.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}

	tests := flag.Bool("tests", true, "also analyze in-package _test.go files")
	vet := flag.Bool("vet", false, "additionally run the standard `go vet` suite")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-tests=false] [-vet] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers (see docs/static-analysis.md):\n")
		for _, a := range runner.All {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	status := 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			status = 2
		}
	}

	res, err := runner.Run(runner.Options{Tests: *tests, Patterns: patterns})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(1)
	}
	if print(res.Fset, res.Diags) {
		status = 2
	}
	os.Exit(status)
}

func runAnalyzers(as []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range as {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: analyzer %s: %v\n", a.Name, err)
			os.Exit(1)
		}
	}
	return diags
}

// print writes diagnostics in file order and reports whether there were any.
func print(fset *token.FileSet, diags []analysis.Diagnostic) bool {
	if len(diags) == 0 || fset == nil {
		return len(diags) > 0
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer.Name)
	}
	return true
}

// vetConfig mirrors the JSON config cmd/go writes for -vettool workers.
type vetConfig struct {
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a cmd/go vet config and
// returns the process exit status (0 clean, 2 diagnostics, 1 error).
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// cmd/go expects the facts file regardless; simlint facts flow only
	// through the direct mode's in-process store, never through vetx files.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("simlint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	as := runner.AnalyzersFor(cfg.ImportPath, false)
	if len(as) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := loader.NewInfo()
	tconf := types.Config{Importer: imp}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "simlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if print(fset, runAnalyzers(as, fset, files, pkg, info)) {
		return 2
	}
	return 0
}
