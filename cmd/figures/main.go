// Command figures regenerates every figure of the paper's evaluation on the
// simulated testbed and prints them as text tables (optionally also CSV
// files).
//
// Usage:
//
//	figures [-only figN] [-csv DIR] [-scale N] [-j N] [-shards N] [-list]
//
// -scale thins the parameter sweeps (2 = every other point) for quick runs;
// the default reproduces the full sweeps. -j sets how many experiment worlds
// run concurrently (default GOMAXPROCS); every world is an independent
// simulation, so the output is byte-identical at any -j. -shards splits each
// world of the shard-aware families (fig1, topo, faults) across N engines
// via the conservative parallel runtime (internal/pdes); output is
// byte-identical at any -shards >= 1, while the default 0 keeps the legacy
// single-engine worlds. -list prints the experiment catalogue as JSON and
// exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/parallel"
)

func main() {
	only := flag.String("only", "", "run a single experiment ("+core.IDList()+")")
	csvDir := flag.String("csv", "", "also write one CSV per figure into this directory")
	scale := flag.Int("scale", 1, "sweep thinning factor (1 = full paper sweeps)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent experiment worlds (1 = sequential)")
	shards := flag.Int("shards", 0, "engines per world for shard-aware families (0 = legacy single-engine worlds; output is identical at any value >= 1)")
	progress := flag.Bool("progress", false, "print live world-completion and ETA lines to stderr (stdout is unaffected)")
	list := flag.Bool("list", false, "print the experiment catalogue as JSON and exit")
	flag.Parse()

	if *list {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(core.Catalogue()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	parallel.SetJobs(*jobs)
	bench.SetShards(*shards)
	parallel.SetWorldShards(*shards)
	if *progress {
		installProgress()
	}

	if *only != "" {
		if _, ok := core.Find(*only); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s\n", *only, core.IDList())
			os.Exit(2)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := core.RunAll(os.Stdout, *only, *csvDir, *scale); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, parallel.Summary())
}

// installProgress wires the stderr progress stream: one line per experiment
// from the catalogue, and world-completion lines with a wall-clock ETA from
// the worker pool. Everything goes to stderr; stdout stays byte-identical
// with or without -progress.
func installProgress() {
	core.OnExperiment = func(e core.Experiment, i, n int) {
		fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s\n", i+1, n, e.ID, e.Title)
	}
	var batchStart time.Time // guarded by the pool's stats lock
	parallel.SetProgress(func(done, total int) {
		if done == 1 {
			batchStart = time.Now()
		}
		// Throttle long sweeps to ~20 lines per batch.
		step := total / 20
		if step < 1 {
			step = 1
		}
		if done%step != 0 && done != total {
			return
		}
		line := fmt.Sprintf("  %d/%d worlds", done, total)
		if s := parallel.WorldShards(); s > 0 {
			line = fmt.Sprintf("  %d/%d worlds (x%d shards)", done, total, s)
		}
		if done > 1 && done < total {
			// The observed per-world rate already folds in however many
			// cores each sharded world actually used, so the ETA needs no
			// shard-count correction — it is labeled above instead.
			perWorld := time.Since(batchStart) / time.Duration(done-1)
			line += fmt.Sprintf(", eta %s", (perWorld * time.Duration(total-done)).Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, line)
	})
}
