// Command figures regenerates every figure of the paper's evaluation on the
// simulated testbed and prints them as text tables (optionally also CSV
// files).
//
// Usage:
//
//	figures [-only figN] [-csv DIR] [-scale N] [-j N]
//
// -scale thins the parameter sweeps (2 = every other point) for quick runs;
// the default reproduces the full sweeps. -j sets how many experiment worlds
// run concurrently (default GOMAXPROCS); every world is an independent
// simulation, so the output is byte-identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/parallel"
)

func main() {
	only := flag.String("only", "", "run a single experiment (fig1..fig8, appx, faults, ext, topo)")
	csvDir := flag.String("csv", "", "also write one CSV per figure into this directory")
	scale := flag.Int("scale", 1, "sweep thinning factor (1 = full paper sweeps)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent experiment worlds (1 = sequential)")
	flag.Parse()

	parallel.SetJobs(*jobs)

	if *only != "" {
		if _, ok := core.Find(*only); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: fig1..fig8, appx, faults, ext, topo\n", *only)
			os.Exit(2)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := core.RunAll(os.Stdout, *only, *csvDir, *scale); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
