// Command simd runs the simulation-as-a-service job server: an HTTP/JSON
// API that accepts experiment specs, executes them on the shared worker
// pool, and serves results from a content-addressed cache keyed on
// (canonical spec hash, seed, code version). Repeated submissions of the
// same spec are answered from disk, byte-identically, without scheduling a
// single simulation world. See docs/simd.md for the API and spec format.
//
// Usage:
//
//	simd [-addr HOST:PORT] [-cache DIR] [-j N] [-check]
//
// -j sets how many simulation worlds of the active job run concurrently
// (default GOMAXPROCS); jobs themselves run one at a time, each fanning its
// worlds across the whole pool. -check runs the end-to-end self-check that
// `make simdcheck` uses (throwaway cache, loopback port) and exits.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"

	"repro/internal/parallel"
	"repro/internal/simd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	cache := flag.String("cache", defaultCacheDir(), "result cache and job journal directory")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulation worlds per job (1 = sequential)")
	check := flag.Bool("check", false, "run the end-to-end self-check and exit")
	flag.Parse()

	parallel.SetJobs(*jobs)

	if *check {
		if err := simd.SelfCheck(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "simdcheck:", err)
			os.Exit(1)
		}
		return
	}

	srv, err := simd.New(simd.Options{CacheDir: *cache})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv.Start()
	fmt.Fprintf(os.Stderr, "simd: listening on %s, cache in %s, %d workers\n",
		*addr, *cache, parallel.Jobs())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// defaultCacheDir places the cache under the user cache root when known,
// else beside the working directory.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return dir + "/repro-simd"
	}
	return ".simd-cache"
}
