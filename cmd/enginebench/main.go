// Command enginebench measures the simulation engine's hot paths and the
// end-to-end figure-suite wall time, and writes the numbers to a JSON file
// (the committed BENCH_engine.json). `make bench` runs it; see
// docs/performance.md for how to read the output.
//
// The microbenchmark workloads mirror internal/sim/engine_bench_test.go —
// keep the loops in sync. The baseline block is the same set of workloads
// measured on the pre-overhaul engine (container/heap, closure-boxed
// events), recorded once so every later run reports its speedup against the
// same fixed reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Result is one measured workload.
type Result struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// Report is the BENCH_engine.json document.
type Report struct {
	// Host describes the measurement environment.
	Host struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	// Engine holds the hot-path microbenchmarks of the current engine.
	Engine map[string]Result `json:"engine"`
	// BaselinePreOverhaul is the pre-overhaul engine measured on the same
	// workloads (fixed reference, not re-measured).
	BaselinePreOverhaul map[string]Result `json:"baseline_pre_overhaul"`
	// SpeedupVsBaseline is current events/sec over baseline events/sec.
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline"`
	// Figures holds end-to-end wall-clock timings of the figure suite.
	Figures struct {
		Scale             int     `json:"scale"`
		Jobs              int     `json:"jobs"`
		WallSecondsJ1     float64 `json:"wall_seconds_j1"`
		WallSecondsJN     float64 `json:"wall_seconds_jn"`
		BaselineWallSecs  float64 `json:"baseline_wall_seconds"`
		SpeedupSequential float64 `json:"speedup_sequential"`
		SpeedupAtJN       float64 `json:"speedup_at_jn"`
		BaselineScaleNote string  `json:"baseline_note"`
	} `json:"figures"`
	// ShardedWorld times ONE world split across engines by the conservative
	// parallel runtime (internal/pdes): a 64-rank MXoE Alltoall on a
	// leaf-spine fabric, at -shards 1 and -shards N. This is the
	// single-world axis of parallelism, orthogonal to the -j worker pool
	// (which runs many worlds). The host fields above are the honest context
	// for the speedup: with NumCPU < shards the shard goroutines time-slice
	// one core and the ratio reflects only the smaller per-shard event heaps,
	// not true parallel execution.
	ShardedWorld struct {
		Workload      string  `json:"workload"`
		Ranks         int     `json:"ranks"`
		Shards        int     `json:"shards"`
		WallSecondsS1 float64 `json:"wall_seconds_shards1"`
		WallSecondsSN float64 `json:"wall_seconds_shardsN"`
		Speedup       float64 `json:"speedup"`
		Identical     bool    `json:"results_identical"`
		Note          string  `json:"note"`
	} `json:"sharded_world"`
}

// baseline is the pre-overhaul engine (container/heap + any-boxed closures,
// window-resliced FIFOs) on this container, go test -bench -benchtime=2s.
var baseline = map[string]Result{
	"schedule_fire":       {NsPerEvent: 115.3, EventsPerSec: 1 / 115.3e-9, AllocsPerEvent: 1, BytesPerEvent: 48},
	"schedule_fire_depth": {NsPerEvent: 432.6, EventsPerSec: 1 / 432.6e-9, AllocsPerEvent: 1, BytesPerEvent: 48},
	"sleep_cycle":         {NsPerEvent: 1007, EventsPerSec: 1 / 1007e-9, AllocsPerEvent: 2, BytesPerEvent: 64},
	"completion_handoff":  {NsPerEvent: 2281, EventsPerSec: 1 / 2281e-9, AllocsPerEvent: 5, BytesPerEvent: 144},
	"schedule_cancel":     {NsPerEvent: 2306, EventsPerSec: 1 / 2306e-9, AllocsPerEvent: 2, BytesPerEvent: 140},
}

// baselineFiguresWall is the pre-overhaul sequential full-sweep figure-suite
// wall time on this container, in seconds.
const baselineFiguresWall = 61.3

func main() {
	out := flag.String("out", "BENCH_engine.json", "output path (- for stdout)")
	scale := flag.Int("scale", 1, "sweep thinning for the figure-suite timing (1 = full)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker count for the parallel figure timing")
	shards := flag.Int("shards", 4, "shard count for the single-world sharded timing")
	skipFigures := flag.Bool("nofigures", false, "skip the end-to-end figure-suite timings")
	flag.Parse()

	var r Report
	r.Host.GoVersion = runtime.Version()
	r.Host.GOOS = runtime.GOOS
	r.Host.GOARCH = runtime.GOARCH
	r.Host.NumCPU = runtime.NumCPU()
	r.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)

	r.Engine = map[string]Result{
		"schedule_fire":       measure(benchScheduleFire),
		"schedule_fire_depth": measure(benchScheduleFireDepth),
		"sleep_cycle":         measure(benchSleepCycle),
		"completion_handoff":  measure(benchCompletionHandoff),
		"schedule_cancel":     measure(benchScheduleCancel),
	}
	r.BaselinePreOverhaul = baseline
	r.SpeedupVsBaseline = map[string]float64{}
	//simlint:allow maporder keyed writes into a map commute; the JSON encoder sorts keys
	for name, cur := range r.Engine {
		if base, ok := baseline[name]; ok && cur.NsPerEvent > 0 {
			r.SpeedupVsBaseline[name] = base.NsPerEvent / cur.NsPerEvent
		}
	}

	if !*skipFigures {
		r.Figures.Scale = *scale
		r.Figures.Jobs = *jobs
		r.Figures.WallSecondsJ1 = timeFigures(1, *scale)
		r.Figures.WallSecondsJN = timeFigures(*jobs, *scale)
		r.Figures.BaselineWallSecs = baselineFiguresWall
		r.Figures.BaselineScaleNote = "baseline is the pre-overhaul engine, sequential, scale 1 on the same container; the catalogue has since grown (topo, faults, breakdown families), so ratios below 1 reflect a bigger catalogue, not a slower engine"
		if *scale == 1 {
			r.Figures.SpeedupSequential = baselineFiguresWall / r.Figures.WallSecondsJ1
			r.Figures.SpeedupAtJN = baselineFiguresWall / r.Figures.WallSecondsJN
		}

		const ranks, size, iters = 64, 4096, 8
		r.ShardedWorld.Workload = "mxoe alltoall, leaf-spine 8x2, conservative parallel runtime (internal/pdes)"
		r.ShardedWorld.Ranks = ranks
		r.ShardedWorld.Shards = *shards
		s1Wall, s1Res := timeSharded(1, ranks, size, iters)
		sNWall, sNRes := timeSharded(*shards, ranks, size, iters)
		r.ShardedWorld.WallSecondsS1 = s1Wall
		r.ShardedWorld.WallSecondsSN = sNWall
		if sNWall > 0 {
			r.ShardedWorld.Speedup = s1Wall / sNWall
		}
		r.ShardedWorld.Identical = s1Res == sNRes
		if !r.ShardedWorld.Identical {
			fmt.Fprintf(os.Stderr, "enginebench: sharded world diverged: shards=1 %+v vs shards=%d %+v\n",
				s1Res, *shards, sNRes)
			os.Exit(1)
		}
		if runtime.NumCPU() < *shards {
			r.ShardedWorld.Note = fmt.Sprintf(
				"host has %d CPU(s) for %d shards: goroutines time-slice, so this ratio measures heap splitting, not parallel speedup",
				runtime.NumCPU(), *shards)
		} else {
			r.ShardedWorld.Note = "shards ran on dedicated CPUs"
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "enginebench: wrote %s\n", *out)
	}
}

// measure runs one workload through the Go benchmark machinery and converts
// the result to per-event numbers.
func measure(fn func(b *testing.B)) Result {
	res := testing.Benchmark(fn)
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	out := Result{
		NsPerEvent:     ns,
		AllocsPerEvent: float64(res.AllocsPerOp()),
		BytesPerEvent:  float64(res.AllocedBytesPerOp()),
	}
	if ns > 0 {
		out.EventsPerSec = 1e9 / ns
	}
	return out
}

// timeFigures runs the full figure catalogue once at the given worker count
// and returns the wall-clock seconds.
func timeFigures(jobs, scale int) float64 {
	parallel.SetJobs(jobs)
	start := time.Now()
	if err := core.RunAll(io.Discard, "", "", scale); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return time.Since(start).Seconds()
}

// timeSharded runs one 64-rank collective world at the given shard count and
// returns the wall-clock seconds plus the simulated result, so the caller can
// assert the staged runtime's identity contract on the same run it timed.
func timeSharded(shards, ranks, size, iters int) (float64, bench.ScaleResult) {
	old := bench.Shards()
	bench.SetShards(shards)
	defer bench.SetShards(old)
	start := time.Now()
	res, err := bench.AlltoallScale(cluster.MXoE, ranks, size, iters,
		bench.ScaleOpts{Topology: fabric.LeafSpine(8, 2)})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return time.Since(start).Seconds(), res
}

// The workloads below mirror internal/sim/engine_bench_test.go.

func benchScheduleFire(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(sim.Nanosecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(sim.Nanosecond, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchScheduleFireDepth(b *testing.B) {
	const depth = 1024
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(sim.Time(1+n%7)*sim.Nanosecond, tick)
		}
	}
	for i := 0; i < depth; i++ {
		e.After(sim.Time(i)*sim.Millisecond+sim.Second, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(sim.Nanosecond, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchSleepCycle(b *testing.B) {
	e := sim.NewEngine()
	e.Go("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(sim.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchCompletionHandoff(b *testing.B) {
	e := sim.NewEngine()
	q := sim.NewQueue[int](e, "hand")
	e.Go("producer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Sleep(sim.Nanosecond)
		}
	})
	e.Go("consumer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchScheduleCancel(b *testing.B) {
	e := sim.NewEngine()
	for i := 0; i < 256; i++ {
		e.After(sim.Second+sim.Time(i)*sim.Millisecond, func() {})
	}
	driver := func() {}
	n := 0
	var tick func()
	tick = func() {
		ev := e.Schedule(sim.Millisecond, driver)
		ev.Cancel()
		n++
		if n < b.N {
			e.After(sim.Nanosecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(sim.Nanosecond, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
