// Command calibrate evaluates every calibration anchor — the headline
// numbers the paper states — against the simulator and prints a
// paper-vs-measured table (the source of EXPERIMENTS.md's summary).
// It exits non-zero if any anchor is outside its tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/parallel"
)

func main() {
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent anchor evaluations (1 = sequential)")
	flag.Parse()
	parallel.SetJobs(*jobs)

	results := core.CheckAnchors()
	fmt.Print(core.FormatAnchors(results))
	fmt.Fprintln(os.Stderr, parallel.Summary())
	for _, r := range results {
		if !r.Within {
			os.Exit(1)
		}
	}
}
