// Command calibrate evaluates every calibration anchor — the headline
// numbers the paper states — against the simulator and prints a
// paper-vs-measured table (the source of EXPERIMENTS.md's summary).
// It exits non-zero if any anchor is outside its tolerance.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	results := core.CheckAnchors()
	fmt.Print(core.FormatAnchors(results))
	for _, r := range results {
		if !r.Within {
			os.Exit(1)
		}
	}
}
