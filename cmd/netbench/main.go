// Command netbench runs a single micro-benchmark on one simulated network,
// like running the paper's individual test programs by hand.
//
// Usage examples:
//
//	netbench -net iwarp -test latency -size 4
//	netbench -net ib -test bandwidth -mode bothway -size 1048576
//	netbench -net iwarp -test multiconn -size 1024 -conns 64
//	netbench -net mxom -test logp -size 1024
//	netbench -net ib -test reuse -size 262144
//	netbench -net mxoe -test queue -queue recv -depth 256 -size 16
//	netbench -net iwarp -test alltoall -nodes 16 -ratio 4 -congested -bgload 0.3 -bgshape incast
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/congestion"
	"repro/internal/faults"
	"repro/internal/logp"
	"repro/internal/parallel"
)

func main() {
	netName := flag.String("net", "iwarp", "network: iwarp | ib | mxom | mxoe")
	test := flag.String("test", "latency", "test: latency | userlatency | bandwidth | multiconn | logp | reuse | queue | overlap | progress | hotspot | alltoall | sockets | udapl")
	size := flag.Int("size", 4, "message size in bytes")
	mode := flag.String("mode", "uni", "bandwidth mode: uni | bidi | bothway")
	conns := flag.Int("conns", 8, "connection count for -test multiconn")
	nodes := flag.Int("nodes", 4, "cluster size for -test alltoall / senders+1 for -test hotspot")
	depth := flag.Int("depth", 256, "queue depth for -test queue")
	queue := flag.String("queue", "unexpected", "queue flavour: unexpected | recv")
	iters := flag.Int("iters", 20, "iterations")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing or ui.perfetto.dev)")
	traceJSONL := flag.String("tracejsonl", "", "write the trace as JSON lines with raw picosecond timestamps")
	traceCap := flag.Int("tracecap", 0, "trace buffer capacity in events (0 = default)")
	metricsFlag := flag.Bool("metrics", false, "dump the metrics registry as JSON to stdout after the test")
	faultsFile := flag.String("faults", "", "apply a fault scenario (JSON, see docs/faults.md) to every testbed the test builds")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent experiment worlds for tests that build several")
	shards := flag.Int("shards", 0, "engines per world for shard-aware tests (0 = legacy single-engine worlds)")
	ratio := flag.Int("ratio", 0, "leaf-spine oversubscription ratio for -test alltoall (0 = single switch)")
	congested := flag.Bool("congested", false, "arm the stack's congestion control and the fabric's bounded queues for -test alltoall")
	bgload := flag.Float64("bgload", 0, "background-traffic load per source in (0, 1] for -test alltoall (0 = no aggressor)")
	bgshape := flag.String("bgshape", "incast", "background-traffic shape: permutation | hotspot | incast | outcast")
	bgseed := flag.Uint64("bgseed", bench.CongestionSeed, "background-traffic seed (same seed = same frame sequence)")
	flag.Parse()

	parallel.SetJobs(*jobs)
	if *test != "alltoall" && (*bgload != 0 || *congested || *ratio != 0) {
		fmt.Fprintln(os.Stderr, "netbench: -bgload, -congested and -ratio shape the loaded collective world; they only apply to -test alltoall")
		os.Exit(2)
	}
	if *bgload < 0 || *bgload > 1 {
		fmt.Fprintf(os.Stderr, "netbench: -bgload %v outside (0, 1]\n", *bgload)
		os.Exit(2)
	}
	if *ratio < 0 {
		fmt.Fprintf(os.Stderr, "netbench: -ratio %d is negative\n", *ratio)
		os.Exit(2)
	}
	if *bgload == 0 && (*bgshape != "incast" || *bgseed != bench.CongestionSeed) {
		fmt.Fprintln(os.Stderr, "netbench: -bgshape and -bgseed parameterize the aggressor; set -bgload > 0 to start one")
		os.Exit(2)
	}
	if *shards >= 1 {
		// Per-shard engines keep per-shard traces and registries; the
		// single-engine dump below would silently miss the other shards'
		// events, so refuse the combination instead of lying.
		if *traceFile != "" || *traceJSONL != "" || *metricsFlag {
			fmt.Fprintln(os.Stderr, "netbench: -trace/-tracejsonl/-metrics cannot dump a sharded world; drop -shards or the observability flags")
			os.Exit(2)
		}
		bench.SetShards(*shards)
	}

	kind, ok := parseKind(*netName)
	if !ok {
		fmt.Fprintf(os.Stderr, "netbench: unknown network %q (iwarp, ib, mxom, mxoe)\n", *netName)
		os.Exit(2)
	}

	var scenario *faults.Scenario
	if *faultsFile != "" {
		sc, err := faults.Load(*faultsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netbench: %v\n", err)
			os.Exit(2)
		}
		scenario = sc
	}

	var lastTB *cluster.Testbed
	if *traceFile != "" || *traceJSONL != "" || *metricsFlag || scenario != nil {
		// The OnNew hook captures "the last testbed built", which only means
		// something when worlds are built one at a time; tracing a -j N run
		// would also interleave unrelated worlds' events. Run sequentially.
		parallel.SetJobs(1)
		cluster.OnNew = func(tb *cluster.Testbed) {
			lastTB = tb
			if *traceFile != "" || *traceJSONL != "" {
				tb.Eng.StartTrace(*traceCap)
			}
			if scenario != nil {
				if _, err := tb.ApplyFaults(scenario); err != nil {
					fmt.Fprintf(os.Stderr, "netbench: applying faults: %v\n", err)
					os.Exit(2)
				}
			}
		}
		if *traceFile != "" || *traceJSONL != "" || *metricsFlag {
			defer dumpObservability(&lastTB, *traceFile, *traceJSONL, *metricsFlag)
		}
	}

	switch *test {
	case "latency":
		lat := bench.MPILatency(kind, *size, *iters)
		fmt.Printf("%s MPI ping-pong latency, %d B: %.3f us\n", kind, *size, lat.Micros())
	case "userlatency":
		lat := bench.UserLatency(kind, *size, *iters)
		fmt.Printf("%s user-level ping-pong latency, %d B: %.3f us\n", kind, *size, lat.Micros())
	case "bandwidth":
		var m bench.BandwidthMode
		switch *mode {
		case "uni":
			m = bench.Unidirectional
		case "bidi":
			m = bench.Bidirectional
		case "bothway":
			m = bench.BothWay
		default:
			fmt.Fprintf(os.Stderr, "netbench: unknown bandwidth mode %q (uni, bidi, bothway)\n", *mode)
			os.Exit(2)
		}
		bw := bench.MPIBandwidth(kind, m, *size, max(*iters/4, 2))
		fmt.Printf("%s MPI %s bandwidth, %d B: %.1f MB/s\n", kind, m, *size, bw)
	case "multiconn":
		if !kind.IsMX() {
			lat := bench.MultiConnLatency(kind, *conns, *size, 8)
			tput := bench.MultiConnThroughput(kind, *conns, *size, 12)
			fmt.Printf("%s %d connections, %d B: normalized latency %.3f us, throughput %.1f MB/s\n",
				kind, *conns, *size, lat.Micros(), tput)
		} else {
			fmt.Fprintln(os.Stderr, "netbench: multiconn compares the two QP/verbs stacks (iwarp, ib)")
			os.Exit(2)
		}
	case "logp":
		p := logp.Measure(kind, *size)
		fmt.Printf("%s LogP at %d B: g=%.2f us, Os=%.2f us, Or=%.2f us\n",
			kind, *size, p.G.Micros(), p.Os.Micros(), p.Or.Micros())
	case "reuse":
		r := bench.BufferReuseRatio(kind, *size)
		fmt.Printf("%s buffer re-use ratio at %d B: %.2f\n", kind, *size, r)
	case "queue":
		var empty, loaded float64
		switch *queue {
		case "unexpected":
			empty = bench.UnexpectedQueueLatency(kind, *size, 0, *iters).Micros()
			loaded = bench.UnexpectedQueueLatency(kind, *size, *depth, *iters).Micros()
		case "recv":
			empty = bench.ReceiveQueueLatency(kind, *size, 0, *iters).Micros()
			loaded = bench.ReceiveQueueLatency(kind, *size, *depth, *iters).Micros()
		default:
			fmt.Fprintf(os.Stderr, "netbench: unknown queue %q (unexpected, recv)\n", *queue)
			os.Exit(2)
		}
		fmt.Printf("%s %s-queue effect, %d B, depth %d: %.2f us -> %.2f us (ratio %.2f)\n",
			kind, *queue, *size, *depth, empty, loaded, loaded/empty)
	case "overlap":
		r := bench.OverlapRatio(kind, *size, max(*iters/4, 2))
		fmt.Printf("%s overlap ratio at %d B: %.2f (1 = compute fully hidden)\n", kind, *size, r)
	case "progress":
		r := bench.ProgressRatio(kind, *size, max(*iters/4, 2))
		fmt.Printf("%s independent-progress ratio at %d B: %.2f\n", kind, *size, r)
	case "hotspot":
		lat := bench.HotspotLatency(kind, *nodes-1, *size, *iters)
		fmt.Printf("%s hotspot with %d senders, %d B: %.2f us per sender\n", kind, *nodes-1, *size, lat.Micros())
	case "alltoall":
		shape, err := congestion.ParseShape(*bgshape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netbench: %v\n", err)
			os.Exit(2)
		}
		opts := bench.CongestionOpts(kind, *ratio, *congested, shape, *bgload, *bgseed)
		res, err := bench.AlltoallScale(kind, *nodes, *size, max(*iters/4, 2), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netbench: alltoall run failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s alltoall on %d nodes, %d B per pair: %.2f us\n", kind, *nodes, *size, res.Time.Micros())
		if *congested || *bgload > 0 {
			fmt.Printf("  fabric: %d tail drops, %d ECN marks, %d background frames (%s at load %.2f)\n",
				res.TailDrops, res.ECNMarks, res.BgFrames, shape, *bgload)
		}
	case "sockets":
		for _, stack := range bench.SocketStacks {
			lat := bench.SocketLatency(stack, *size, *iters)
			bw := bench.SocketBandwidth(stack, max(*size, 4096), 32)
			fmt.Printf("%-10s %d B latency %.2f us, streaming %.1f MB/s\n", stack, *size, lat.Micros(), bw)
		}
	case "udapl":
		if kind.IsMX() {
			fmt.Fprintln(os.Stderr, "netbench: udapl runs on the verbs stacks (iwarp, ib)")
			os.Exit(2)
		}
		lat := bench.UDAPLatency(kind, *size, *iters)
		raw := bench.UserLatency(kind, *size, *iters)
		fmt.Printf("%s uDAPL %d B: %.2f us (raw verbs %.2f us)\n", kind, *size, lat.Micros(), raw.Micros())
	default:
		fmt.Fprintf(os.Stderr, "netbench: unknown test %q\n", *test)
		os.Exit(2)
	}
}

// dumpObservability writes the requested trace and metrics artifacts from
// the last testbed the run built.
func dumpObservability(tbp **cluster.Testbed, traceFile, traceJSONL string, metrics bool) {
	tb := *tbp
	if tb == nil {
		fmt.Fprintln(os.Stderr, "netbench: no testbed was built; nothing to dump")
		return
	}
	tr := tb.Eng.Trc()
	if traceFile != "" {
		if err := tr.WriteChromeFile(traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "netbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events to %s (%d dropped)\n", tr.Len(), traceFile, tr.Dropped())
	}
	if traceJSONL != "" {
		f, err := os.Create(traceJSONL)
		if err == nil {
			err = tr.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "netbench: writing trace jsonl: %v\n", err)
			os.Exit(1)
		}
	}
	if metrics {
		tb.Fabric.PublishLinkMetrics()
		if err := tb.Eng.Metrics().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "netbench: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

func parseKind(s string) (cluster.Kind, bool) {
	switch strings.ToLower(s) {
	case "iwarp":
		return cluster.IWARP, true
	case "ib", "infiniband":
		return cluster.IB, true
	case "mxom", "myrinet":
		return cluster.MXoM, true
	case "mxoe":
		return cluster.MXoE, true
	}
	return 0, false
}
