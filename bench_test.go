// Package repro's benchmark suite regenerates every figure of the paper
// (one Benchmark per panel) plus the ablation studies from DESIGN.md.
//
// Each benchmark runs the corresponding simulated experiment and reports
// the headline result as a custom metric in *virtual* time or rate
// (virt-us, virt-MB/s, ratio): wall-clock ns/op measures the simulator
// itself, the custom metrics reproduce the paper. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/logp"
	"repro/internal/sim"
)

func BenchmarkFig1_UserLevelLatency(b *testing.B) {
	for _, kind := range cluster.Kinds {
		for _, size := range []int{4, 1 << 10, 64 << 10} {
			b.Run(fmt.Sprintf("%s/%dB", kind, size), func(b *testing.B) {
				var lat sim.Time
				for i := 0; i < b.N; i++ {
					lat = bench.UserLatency(kind, size, 10)
				}
				b.ReportMetric(lat.Micros(), "virt-us")
			})
		}
	}
}

func BenchmarkFig1_UserLevelBandwidth(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				lat := bench.UserLatency(kind, 1<<20, 3)
				bw = sim.MBpsOf(1<<20, lat)
			}
			b.ReportMetric(bw, "virt-MB/s")
		})
	}
}

func BenchmarkFig2_MultiConnectionLatency(b *testing.B) {
	for _, kind := range cluster.VerbsKinds {
		for _, conns := range []int{1, 8, 64, 256} {
			b.Run(fmt.Sprintf("%s/conns-%d", kind, conns), func(b *testing.B) {
				var lat sim.Time
				for i := 0; i < b.N; i++ {
					lat = bench.MultiConnLatency(kind, conns, 1<<10, 6)
				}
				b.ReportMetric(lat.Micros(), "virt-us")
			})
		}
	}
}

func BenchmarkFig2_MultiConnectionThroughput(b *testing.B) {
	for _, kind := range cluster.VerbsKinds {
		for _, conns := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/conns-%d", kind, conns), func(b *testing.B) {
				var tput float64
				for i := 0; i < b.N; i++ {
					tput = bench.MultiConnThroughput(kind, conns, 1<<10, 10)
				}
				b.ReportMetric(tput, "virt-MB/s")
			})
		}
	}
}

func BenchmarkFig3_MPILatency(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var lat sim.Time
			for i := 0; i < b.N; i++ {
				lat = bench.MPILatency(kind, 4, 20)
			}
			b.ReportMetric(lat.Micros(), "virt-us")
		})
	}
}

func BenchmarkFig3_MPIOverhead(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				user := bench.UserLatency(kind, 4, 20)
				mlat := bench.MPILatency(kind, 4, 20)
				overhead = 100 * float64(mlat-user) / float64(user)
			}
			b.ReportMetric(overhead, "virt-%")
		})
	}
}

func BenchmarkFig4_MPIBandwidth(b *testing.B) {
	modes := []bench.BandwidthMode{bench.Unidirectional, bench.Bidirectional, bench.BothWay}
	for _, kind := range cluster.Kinds {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%s", kind, mode), func(b *testing.B) {
				var bw float64
				for i := 0; i < b.N; i++ {
					bw = bench.MPIBandwidth(kind, mode, 1<<20, 2)
				}
				b.ReportMetric(bw, "virt-MB/s")
			})
		}
	}
}

func BenchmarkFig5_LogPGap(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var g sim.Time
			for i := 0; i < b.N; i++ {
				g = logp.Gap(kind, 1, 48)
			}
			b.ReportMetric(g.Micros(), "virt-us")
		})
	}
}

func BenchmarkFig5_LogPSenderOverhead(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var os sim.Time
			for i := 0; i < b.N; i++ {
				os = logp.SenderOverhead(kind, 1, 10)
			}
			b.ReportMetric(os.Micros(), "virt-us")
		})
	}
}

func BenchmarkFig5_LogPReceiverOverhead(b *testing.B) {
	for _, kind := range cluster.Kinds {
		for _, size := range []int{1, 64 << 10} {
			b.Run(fmt.Sprintf("%s/%dB", kind, size), func(b *testing.B) {
				var or sim.Time
				for i := 0; i < b.N; i++ {
					or = logp.ReceiverOverhead(kind, size, 3)
				}
				b.ReportMetric(or.Micros(), "virt-us")
			})
		}
	}
}

func BenchmarkFig6_BufferReuse(b *testing.B) {
	cases := []struct {
		kind cluster.Kind
		size int
	}{
		{cluster.IWARP, 256 << 10},
		{cluster.IB, 128 << 10},
		{cluster.MXoM, 1 << 20},
		{cluster.MXoE, 1 << 20},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%s/%dKB", c.kind, c.size>>10), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = bench.BufferReuseRatio(c.kind, c.size)
			}
			b.ReportMetric(ratio, "virt-ratio")
		})
	}
}

func BenchmarkFig7_UnexpectedQueue(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				empty := bench.UnexpectedQueueLatency(kind, 1<<10, 0, 8)
				loaded := bench.UnexpectedQueueLatency(kind, 1<<10, 1024, 8)
				ratio = float64(loaded) / float64(empty)
			}
			b.ReportMetric(ratio, "virt-ratio")
		})
	}
}

func BenchmarkFig8_ReceiveQueue(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				empty := bench.ReceiveQueueLatency(kind, 16, 0, 8)
				loaded := bench.ReceiveQueueLatency(kind, 16, 1024, 8)
				ratio = float64(loaded) / float64(empty)
			}
			b.ReportMetric(ratio, "virt-ratio")
		})
	}
}

func BenchmarkAblation_PipelineWidth(b *testing.B) {
	for _, width := range []int{1, 4, 16, 48} {
		b.Run(fmt.Sprintf("width-%d", width), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				fig := bench.AblatePipelineWidth([]int{width}, 64, 1<<10)
				lat = fig.Series[0].Points[0].Y
			}
			b.ReportMetric(lat, "virt-us")
		})
	}
}

func BenchmarkAblation_CtxCache(b *testing.B) {
	for _, size := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("cache-%d", size), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				fig := bench.AblateCtxCache([]int{size}, 64, 1<<10)
				lat = fig.Series[0].Points[0].Y
			}
			b.ReportMetric(lat, "virt-us")
		})
	}
}

func BenchmarkAblation_MPAMarkers(b *testing.B) {
	b.Run("sweep", func(b *testing.B) {
		var withMarkers, without float64
		for i := 0; i < b.N; i++ {
			fig := bench.AblateMPAMarkers(1 << 20)
			withMarkers = fig.Series[0].Points[3].Y
			without = fig.Series[1].Points[3].Y
		}
		b.ReportMetric(withMarkers, "virt-us-markers")
		b.ReportMetric(without, "virt-us-bare")
	})
}

func BenchmarkAblation_EagerThreshold(b *testing.B) {
	for _, th := range []int{1 << 10, 8 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("thresh-%dKB", th>>10), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				fig := bench.AblateEagerThreshold([]int{th}, 16<<10)
				lat = fig.Series[0].Points[0].Y
			}
			b.ReportMetric(lat, "virt-us")
		})
	}
}

func BenchmarkAblation_MXRegCache(b *testing.B) {
	b.Run("1MB", func(b *testing.B) {
		var on, off float64
		for i := 0; i < b.N; i++ {
			fig := bench.AblateMXRegCache(1 << 20)
			on = fig.Series[0].Points[0].Y
			off = fig.Series[1].Points[0].Y
		}
		b.ReportMetric(on, "virt-ratio-on")
		b.ReportMetric(off, "virt-ratio-off")
	})
}

func BenchmarkAblation_NICMatchCost(b *testing.B) {
	for _, ns := range []int{5, 35, 140} {
		b.Run(fmt.Sprintf("cost-%dns", ns), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				fig := bench.AblateNICMatchCost([]int{ns}, 256)
				ratio = fig.Series[0].Points[0].Y
			}
			b.ReportMetric(ratio, "virt-ratio")
		})
	}
}

func BenchmarkAppendix_Overlap(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				r = bench.OverlapRatio(kind, 256<<10, 4)
			}
			b.ReportMetric(r, "virt-ratio")
		})
	}
}

func BenchmarkAppendix_Progress(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				r = bench.ProgressRatio(kind, 128<<10, 3)
			}
			b.ReportMetric(r, "virt-ratio")
		})
	}
}

func BenchmarkAppendix_Hotspot(b *testing.B) {
	for _, kind := range cluster.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var lat sim.Time
			for i := 0; i < b.N; i++ {
				lat = bench.HotspotLatency(kind, 3, 1<<10, 8)
			}
			b.ReportMetric(lat.Micros(), "virt-us")
		})
	}
}

func BenchmarkExt_Sockets(b *testing.B) {
	for _, stack := range bench.SocketStacks {
		b.Run(stack, func(b *testing.B) {
			var lat sim.Time
			var bw float64
			for i := 0; i < b.N; i++ {
				lat = bench.SocketLatency(stack, 64, 10)
				bw = bench.SocketBandwidth(stack, 1<<20, 4)
			}
			b.ReportMetric(lat.Micros(), "virt-us")
			b.ReportMetric(bw, "virt-MB/s")
		})
	}
}

func BenchmarkExt_UDAPL(b *testing.B) {
	for _, kind := range cluster.VerbsKinds {
		b.Run(kind.String(), func(b *testing.B) {
			var lat sim.Time
			for i := 0; i < b.N; i++ {
				lat = bench.UDAPLatency(kind, 64, 10)
			}
			b.ReportMetric(lat.Micros(), "virt-us")
		})
	}
}

func BenchmarkExt_ScalingAlltoall(b *testing.B) {
	for _, kind := range cluster.Kinds {
		for _, nodes := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/nodes-%d", kind, nodes), func(b *testing.B) {
				var at sim.Time
				for i := 0; i < b.N; i++ {
					var err error
					at, err = bench.AlltoallTime(kind, nodes, 1<<10, 3)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(at.Micros(), "virt-us")
			})
		}
	}
}
